// Package lex tokenizes IDL surface syntax.
package lex

import "fmt"

// Kind identifies a token type.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	ERROR

	// Punctuation.
	DOT      // .
	COMMA    // ,
	LPAREN   // (
	RPAREN   // )
	QUESTION // ?
	SEMI     // ;
	PLUS     // +
	MINUS    // -
	STAR     // *
	NOT      // ~  !  ¬
	LARROW   // <-  ←
	RARROW   // ->  →

	// Relational operators.
	EQ // =
	NE // != ≠
	LT // <
	LE // <= ≤
	GT // >
	GE // >= ≥

	// Literals and names.
	IDENT  // lowercase-initial word: a constant name (string atom)
	VAR    // uppercase-initial word: a logical variable
	INT    // integer literal
	FLOAT  // float literal
	DATE   // m/d/y literal
	STRING // "quoted string"
)

var kindNames = map[Kind]string{
	EOF: "EOF", ERROR: "ERROR", DOT: ".", COMMA: ",", LPAREN: "(",
	RPAREN: ")", QUESTION: "?", SEMI: ";", PLUS: "+", MINUS: "-",
	STAR: "*", NOT: "~", LARROW: "<-", RARROW: "->", EQ: "=", NE: "!=",
	LT: "<", LE: "<=", GT: ">", GE: ">=", IDENT: "identifier",
	VAR: "variable", INT: "integer", FLOAT: "float", DATE: "date",
	STRING: "string",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string // raw text (unquoted for STRING)
	Pos  Pos

	// Numeric payloads, valid per Kind.
	Int              int64   // INT
	Float            float64 // FLOAT
	Year, Month, Day int     // DATE
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, VAR, INT, FLOAT, DATE, STRING:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
