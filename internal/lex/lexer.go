package lex

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer tokenizes an IDL source string. Errors are reported as ERROR
// tokens carrying the message; the lexer recovers by skipping the
// offending rune so parsing can continue to find more errors.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokens lexes the entire input, returning every token up to and
// including EOF.
func Tokens(src string) []Token {
	lx := New(src)
	var out []Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == EOF {
			return out
		}
	}
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peekAt(byteAhead int) rune {
	if l.off+byteAhead >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+byteAhead:])
	return r
}

func (l *Lexer) advance() rune {
	r, size := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%': // Prolog-style line comment
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '/': // C-style line comment
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) tok(k Kind, text string, p Pos) Token {
	return Token{Kind: k, Text: text, Pos: p}
}

func (l *Lexer) errorf(p Pos, format string, args ...any) Token {
	return Token{Kind: ERROR, Text: fmt.Sprintf(format, args...), Pos: p}
}

// Next returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	p := l.pos()
	if l.off >= len(l.src) {
		return l.tok(EOF, "", p)
	}
	r := l.peek()
	switch {
	case r == '.':
		// Disambiguate the path dot from a leading-dot float (.5): IDL
		// paths always follow '.' with a letter, '_' or a variable, so a
		// digit after '.' is a float.
		if d := l.peekAt(1); d >= '0' && d <= '9' {
			return l.lexNumber(p)
		}
		l.advance()
		return l.tok(DOT, ".", p)
	case r == ',':
		l.advance()
		return l.tok(COMMA, ",", p)
	case r == '(':
		l.advance()
		return l.tok(LPAREN, "(", p)
	case r == ')':
		l.advance()
		return l.tok(RPAREN, ")", p)
	case r == '?':
		l.advance()
		return l.tok(QUESTION, "?", p)
	case r == ';':
		l.advance()
		return l.tok(SEMI, ";", p)
	case r == '+':
		l.advance()
		return l.tok(PLUS, "+", p)
	case r == '*':
		l.advance()
		return l.tok(STAR, "*", p)
	case r == '~' || r == '¬':
		l.advance()
		return l.tok(NOT, "~", p)
	case r == '←':
		l.advance()
		return l.tok(LARROW, "<-", p)
	case r == '→':
		l.advance()
		return l.tok(RARROW, "->", p)
	case r == '-':
		l.advance()
		if l.peek() == '>' {
			l.advance()
			return l.tok(RARROW, "->", p)
		}
		return l.tok(MINUS, "-", p)
	case r == '=':
		l.advance()
		return l.tok(EQ, "=", p)
	case r == '≠':
		l.advance()
		return l.tok(NE, "!=", p)
	case r == '≤':
		l.advance()
		return l.tok(LE, "<=", p)
	case r == '≥':
		l.advance()
		return l.tok(GE, ">=", p)
	case r == '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return l.tok(NE, "!=", p)
		}
		return l.tok(NOT, "~", p)
	case r == '<':
		l.advance()
		switch l.peek() {
		case '=':
			l.advance()
			return l.tok(LE, "<=", p)
		case '-':
			// `<-` is the rule arrow unless it reads as a comparison with
			// a negative number (`<-5` ⇒ `< -5`).
			if d := l.peekAt(1); d >= '0' && d <= '9' {
				return l.tok(LT, "<", p)
			}
			l.advance()
			return l.tok(LARROW, "<-", p)
		}
		return l.tok(LT, "<", p)
	case r == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return l.tok(GE, ">=", p)
		}
		return l.tok(GT, ">", p)
	case r == '"':
		return l.lexString(p)
	case r >= '0' && r <= '9':
		return l.lexNumber(p)
	case r == '_' || unicode.IsLetter(r):
		return l.lexWord(p)
	default:
		l.advance()
		return l.errorf(p, "unexpected character %q", r)
	}
}

func (l *Lexer) lexWord(p Pos) Token {
	start := l.off
	for l.off < len(l.src) {
		r := l.peek()
		if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.off]
	first, _ := utf8.DecodeRuneInString(text)
	if unicode.IsUpper(first) {
		return Token{Kind: VAR, Text: text, Pos: p}
	}
	return Token{Kind: IDENT, Text: text, Pos: p}
}

func (l *Lexer) lexString(p Pos) Token {
	start := l.off
	l.advance() // opening quote
	for l.off < len(l.src) {
		r := l.peek()
		if r == '\\' {
			l.advance()
			if l.off < len(l.src) {
				l.advance()
			}
			continue
		}
		if r == '"' {
			l.advance()
			raw := l.src[start:l.off]
			text, err := strconv.Unquote(raw)
			if err != nil {
				return l.errorf(p, "bad string literal %s", raw)
			}
			return Token{Kind: STRING, Text: text, Pos: p}
		}
		if r == '\n' {
			break
		}
		l.advance()
	}
	return l.errorf(p, "unterminated string literal")
}

// lexNumber scans an INT, FLOAT, or DATE (m/d/y with no spaces) literal.
func (l *Lexer) lexNumber(p Pos) Token {
	start := l.off
	digits := func() {
		for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
	}
	digits()
	// DATE: int '/' int '/' int, written the paper's way (3/3/85).
	if l.peek() == '/' && isDigit(l.peekAt(1)) {
		first := l.src[start:l.off]
		l.advance() // first slash
		secondStart := l.off
		digits()
		second := l.src[secondStart:l.off]
		if l.peek() != '/' || !isDigit(l.peekAt(1)) {
			return l.errorf(p, "malformed date literal starting %q", l.src[start:l.off])
		}
		l.advance() // second slash
		thirdStart := l.off
		digits()
		third := l.src[thirdStart:l.off]
		m, _ := strconv.Atoi(first)
		d, _ := strconv.Atoi(second)
		y, _ := strconv.Atoi(third)
		if m < 1 || m > 12 || d < 1 || d > 31 {
			return l.errorf(p, "date %s/%s/%s out of range", first, second, third)
		}
		return Token{Kind: DATE, Text: l.src[start:l.off], Pos: p, Year: y, Month: m, Day: d}
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		isFloat = true
		l.advance()
		digits()
	}
	if r := l.peek(); r == 'e' || r == 'E' {
		// Exponent part; only if followed by digits (or sign+digits).
		save, saveLine, saveCol := l.off, l.line, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			digits()
		} else {
			l.off, l.line, l.col = save, saveLine, saveCol
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return l.errorf(p, "bad float literal %q", text)
		}
		return Token{Kind: FLOAT, Text: text, Pos: p, Float: f}
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return l.errorf(p, "bad integer literal %q", text)
	}
	return Token{Kind: INT, Text: text, Pos: p, Int: n}
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

// Describe renders a one-line summary of the token stream; used by tests
// and the CLI's -tokens debugging flag.
func Describe(tokens []Token) string {
	parts := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if t.Kind == EOF {
			break
		}
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}
