package lex

import (
	"testing"
)

func kinds(src string) []Kind {
	var ks []Kind
	for _, t := range Tokens(src) {
		ks = append(ks, t.Kind)
	}
	return ks
}

func assertKinds(t *testing.T, src string, want ...Kind) {
	t.Helper()
	want = append(want, EOF)
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("lex(%q): got %d tokens %v, want %d %v", src, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("lex(%q)[%d] = %v, want %v (all: %v)", src, i, got[i], want[i], got)
		}
	}
}

func TestPunctuation(t *testing.T) {
	assertKinds(t, "? . , ( ) ; + - *",
		QUESTION, DOT, COMMA, LPAREN, RPAREN, SEMI, PLUS, MINUS, STAR)
}

func TestRelops(t *testing.T) {
	assertKinds(t, "= != < <= > >=", EQ, NE, LT, LE, GT, GE)
	assertKinds(t, "≠ ≤ ≥", NE, LE, GE)
}

func TestArrowsAndNegation(t *testing.T) {
	assertKinds(t, "<- -> ← → ~ ! ¬", LARROW, RARROW, LARROW, RARROW, NOT, NOT, NOT)
	// `<-5` reads as a comparison with a negative number, not an arrow.
	assertKinds(t, "<-5", LT, MINUS, INT)
	// `!=` is NE, bare `!` is NOT.
	assertKinds(t, "!=1 !x", NE, INT, NOT, IDENT)
}

func TestWords(t *testing.T) {
	toks := Tokens(".euter.r(.stkCode=hp, .clsPrice>60)")
	wantKinds := []Kind{DOT, IDENT, DOT, IDENT, LPAREN, DOT, IDENT, EQ,
		IDENT, COMMA, DOT, IDENT, GT, INT, RPAREN, EOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i], k)
		}
	}
	if toks[1].Text != "euter" || toks[8].Text != "hp" {
		t.Errorf("identifier text wrong: %v %v", toks[1], toks[8])
	}
}

func TestVariablesVsIdentifiers(t *testing.T) {
	toks := Tokens("X stkCode Price _x Y2")
	want := []struct {
		kind Kind
		text string
	}{
		{VAR, "X"}, {IDENT, "stkCode"}, {VAR, "Price"}, {IDENT, "_x"}, {VAR, "Y2"},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks := Tokens("42 2.5 0.125 1e3 7e 50")
	if toks[0].Kind != INT || toks[0].Int != 42 {
		t.Errorf("42: %v", toks[0])
	}
	if toks[1].Kind != FLOAT || toks[1].Float != 2.5 {
		t.Errorf("2.5: %v", toks[1])
	}
	if toks[2].Kind != FLOAT || toks[2].Float != 0.125 {
		t.Errorf("0.125: %v", toks[2])
	}
	if toks[3].Kind != FLOAT || toks[3].Float != 1000 {
		t.Errorf("1e3: %v", toks[3])
	}
	// "7e" is INT 7 then IDENT e.
	if toks[4].Kind != INT || toks[4].Int != 7 || toks[5].Kind != IDENT || toks[5].Text != "e" {
		t.Errorf("7e: %v %v", toks[4], toks[5])
	}
	if toks[6].Kind != INT || toks[6].Int != 50 {
		t.Errorf("50: %v", toks[6])
	}
}

func TestLeadingDotFloat(t *testing.T) {
	// A digit after '.' lexes as a float, not a path dot.
	toks := Tokens(".5 .x")
	if toks[0].Kind != FLOAT || toks[0].Float != 0.5 {
		t.Errorf(".5: %v", toks[0])
	}
	if toks[1].Kind != DOT || toks[2].Kind != IDENT {
		t.Errorf(".x: %v %v", toks[1], toks[2])
	}
}

func TestDates(t *testing.T) {
	toks := Tokens("3/3/85 12/31/1999")
	if toks[0].Kind != DATE || toks[0].Month != 3 || toks[0].Day != 3 || toks[0].Year != 85 {
		t.Fatalf("3/3/85: %+v", toks[0])
	}
	if toks[1].Kind != DATE || toks[1].Month != 12 || toks[1].Day != 31 || toks[1].Year != 1999 {
		t.Fatalf("12/31/1999: %+v", toks[1])
	}
	// Out-of-range month is an error token.
	toks = Tokens("13/1/85")
	if toks[0].Kind != ERROR {
		t.Errorf("13/1/85 should be an error, got %v", toks[0])
	}
	// A lone slash after a number is an error (no division operator).
	toks = Tokens("3/4")
	if toks[0].Kind != ERROR {
		t.Errorf("3/4 should be a malformed date error, got %v", toks[0])
	}
}

func TestStrings(t *testing.T) {
	toks := Tokens(`"hello world" "esc\"aped"`)
	if toks[0].Kind != STRING || toks[0].Text != "hello world" {
		t.Errorf("string 1: %v", toks[0])
	}
	if toks[1].Kind != STRING || toks[1].Text != `esc"aped` {
		t.Errorf("string 2: %v", toks[1])
	}
	toks = Tokens("\"unterminated")
	if toks[0].Kind != ERROR {
		t.Errorf("unterminated string should error, got %v", toks[0])
	}
	toks = Tokens("\"across\nlines\"")
	if toks[0].Kind != ERROR {
		t.Errorf("newline in string should error, got %v", toks[0])
	}
}

func TestComments(t *testing.T) {
	assertKinds(t, "% whole line\nx", IDENT)
	assertKinds(t, "x // trailing\ny", IDENT, IDENT)
	assertKinds(t, "x%comment", IDENT)
}

func TestPositions(t *testing.T) {
	toks := Tokens("ab\n  cd")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("ab at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("cd at %v", toks[1].Pos)
	}
}

func TestErrorRecovery(t *testing.T) {
	toks := Tokens("@ x")
	if toks[0].Kind != ERROR {
		t.Fatalf("expected error token, got %v", toks[0])
	}
	if toks[1].Kind != IDENT || toks[1].Text != "x" {
		t.Fatalf("lexer should recover after error, got %v", toks[1])
	}
}

func TestPaperQueriesLex(t *testing.T) {
	// Every query string from the paper must lex without error tokens.
	queries := []string{
		"?.euter.r(.stkCode=hp, .clsPrice>60)",
		"?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)",
		"?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r~(.stkCode=hp, .clsPrice>P)",
		"?.euter.r(.stkCode=S, .clsPrice>200)",
		"?.X", "?.ource.Y", "?.X.Y", "?.X.hp", "?.X.Y(.stkCode)",
		"?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)",
		"?.euter.Y, .chwab.Y, .ource.Y",
		"?.chwab.r(.S>200)",
		"?.ource.S(.clsPrice > 200)",
		"?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)",
		"?.euter.r-(.date=3/3/85,.stkCode=hp)",
		"?.chwab.r(.date=3/3/85, .hp-=C)",
		"?.chwab.r(.date=3/3/85, -.hp=C)",
		"?.chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
		".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
		".dbU.rmStk(.stk=S) -> .ource-.S",
	}
	for _, q := range queries {
		for _, tok := range Tokens(q) {
			if tok.Kind == ERROR {
				t.Errorf("lex(%q): error token %v at %v", q, tok.Text, tok.Pos)
			}
		}
	}
}

func TestDescribe(t *testing.T) {
	got := Describe(Tokens("?.x=5"))
	if got == "" {
		t.Error("Describe returned empty")
	}
}
