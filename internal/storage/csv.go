package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"idl/internal/object"
)

// ExportCSV writes a relation as CSV. The header is the union of
// attribute names across tuples (sorted); tuples lacking an attribute
// emit an empty cell, and null values emit the literal `\N`. Aggregate
// values are rejected — CSV is for flat relations.
func ExportCSV(w io.Writer, rel *object.Set) error {
	attrSet := map[string]bool{}
	var badKind object.Kind
	bad := false
	rel.Each(func(e object.Object) bool {
		t, ok := e.(*object.Tuple)
		if !ok {
			bad, badKind = true, e.Kind()
			return false
		}
		for _, a := range t.Attrs() {
			attrSet[a] = true
		}
		return true
	})
	if bad {
		return fmt.Errorf("storage: relation contains a %s element; CSV export needs tuples", badKind)
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	cw := csv.NewWriter(w)
	if err := cw.Write(attrs); err != nil {
		return err
	}
	var failure error
	rel.Each(func(e object.Object) bool {
		t := e.(*object.Tuple)
		rec := make([]string, len(attrs))
		for i, a := range attrs {
			v, ok := t.Get(a)
			if !ok {
				rec[i] = ""
				continue
			}
			cell, err := cellString(v)
			if err != nil {
				failure = err
				return false
			}
			rec[i] = cell
		}
		if err := cw.Write(rec); err != nil {
			failure = err
			return false
		}
		return true
	})
	if failure != nil {
		return failure
	}
	cw.Flush()
	return cw.Error()
}

func cellString(v object.Object) (string, error) {
	switch x := v.(type) {
	case object.Null:
		return `\N`, nil
	case object.Bool:
		return strconv.FormatBool(bool(x)), nil
	case object.Int:
		return strconv.FormatInt(int64(x), 10), nil
	case object.Float:
		return strconv.FormatFloat(float64(x), 'g', -1, 64), nil
	case object.Str:
		return string(x), nil
	case object.Date:
		return fmt.Sprintf("%d/%d/%d", x.Month, x.Day, x.Year), nil
	default:
		return "", fmt.Errorf("storage: cannot export %s value to CSV", v.Kind())
	}
}

// ImportCSV reads a relation from CSV written by ExportCSV (or by hand):
// the first record is the attribute header; cells infer their type —
// empty means "attribute absent", `\N` means null, then int, float, date
// (m/d/y), bool, and finally string.
func ImportCSV(r io.Reader) (*object.Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: read CSV header: %w", err)
	}
	rel := object.NewSet()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read CSV line %d: %w", line, err)
		}
		if len(rec) > len(header) {
			return nil, fmt.Errorf("storage: CSV line %d has %d cells for %d columns", line, len(rec), len(header))
		}
		t := object.NewTuple()
		for i, cell := range rec {
			if cell == "" {
				continue
			}
			t.Put(header[i], inferCell(cell))
		}
		rel.Add(t)
	}
}

// inferCell parses a CSV cell into the most specific atom.
func inferCell(cell string) object.Object {
	if cell == `\N` {
		return object.Null{}
	}
	if n, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return object.Int(n)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return object.Float(f)
	}
	if d, ok := parseDateCell(cell); ok {
		return d
	}
	switch cell {
	case "true":
		return object.Bool(true)
	case "false":
		return object.Bool(false)
	}
	return object.Str(cell)
}

func parseDateCell(cell string) (object.Date, bool) {
	parts := strings.Split(cell, "/")
	if len(parts) != 3 {
		return object.Date{}, false
	}
	nums := make([]int, 3)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return object.Date{}, false
		}
		nums[i] = n
	}
	if nums[0] < 1 || nums[0] > 12 || nums[1] < 1 || nums[1] > 31 {
		return object.Date{}, false
	}
	return object.NewDate(nums[2], nums[0], nums[1]), true
}
