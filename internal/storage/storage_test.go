package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idl/internal/object"
)

func sampleUniverse() *object.Tuple {
	u := object.NewTuple()
	euter := object.NewTuple()
	euter.Put("r", object.SetOf(
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50),
		object.TupleOf("date", object.NewDate(85, 3, 2), "stkCode", "hp", "clsPrice", 55),
	))
	u.Put("euter", euter)
	ource := object.NewTuple()
	ource.Put("hp", object.SetOf(object.TupleOf("date", object.NewDate(85, 3, 1), "clsPrice", 50)))
	u.Put("ource", ource)
	return u
}

func TestSaveLoadRoundTrip(t *testing.T) {
	u := sampleUniverse()
	var buf bytes.Buffer
	if err := Save(&buf, u); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(back) {
		t.Error("round-trip changed the universe")
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleUniverse()); err != nil {
		t.Fatal(err)
	}
	data := buf.String()
	// Flip a data byte inside the universe payload without breaking JSON.
	corrupted := strings.Replace(data, "euter", "eutex", 1)
	if corrupted == data {
		t.Fatal("corruption did not apply")
	}
	_, err := Load(strings.NewReader(corrupted))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("want checksum error, got %v", err)
	}
}

// TestLoadCorruptionClasses pins the failure taxonomy: each way a
// snapshot stream can be bad maps to its own sentinel, so recovery code
// can branch on errors.Is instead of parsing messages.
func TestLoadCorruptionClasses(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleUniverse()); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	corrupted := strings.Replace(good, "euter", "eutex", 1)
	if corrupted == good {
		t.Fatal("corruption did not apply")
	}
	cases := []struct {
		name  string
		input string
		want  error
	}{
		{"empty file", "", ErrEmpty},
		{"whitespace only", " \n\t", ErrEmpty},
		{"truncated mid-document", good[:len(good)/2], ErrTruncated},
		{"truncated mid-token", good[:len(good)-3], ErrTruncated},
		{"checksum mismatch", corrupted, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.input))
			if !errors.Is(err, tc.want) {
				t.Errorf("Load(%q...) = %v, want errors.Is %v", firstN(tc.input, 20), err, tc.want)
			}
			// The classes are mutually exclusive.
			for _, other := range []error{ErrEmpty, ErrTruncated, ErrChecksum} {
				if other != tc.want && errors.Is(err, other) {
					t.Errorf("error %v also matches %v", err, other)
				}
			}
		})
	}
}

func firstN(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func TestLoadRejectsWrongFormat(t *testing.T) {
	_, err := Load(strings.NewReader(`{"format":99,"checksum":"x","universe":{}}`))
	if err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("want format error, got %v", err)
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestLoadRejectsNonTupleRoot(t *testing.T) {
	raw, err := object.MarshalJSON(object.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString(`{"format":1,"checksum":"`)
	buf.WriteString(checksum(raw))
	buf.WriteString(`","universe":`)
	buf.Write(raw)
	buf.WriteString(`}`)
	_, err = Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "tuple") {
		t.Errorf("want root-kind error, got %v", err)
	}
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "universe.idl")
	u := sampleUniverse()
	if err := SaveFile(path, u); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(back) {
		t.Error("file round-trip changed the universe")
	}
	// Overwrite with modified state; no temp files left behind.
	euter, _ := u.Get("euter")
	rel, _ := euter.(*object.Tuple).Get("r")
	rel.(*object.Set).Add(object.TupleOf("date", object.NewDate(85, 3, 3), "stkCode", "hp", "clsPrice", 62))
	if err := SaveFile(path, u); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the snapshot", len(entries))
	}
	back, err = LoadFile(path)
	if err != nil || !u.Equal(back) {
		t.Error("second round-trip failed")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.idl")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel := object.SetOf(
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50),
		object.TupleOf("date", object.NewDate(85, 3, 2), "stkCode", "hp", "clsPrice", 55.5),
		object.TupleOf("stkCode", "weird"), // heterogeneous arity
		object.TupleOf("stkCode", "nullish", "clsPrice", object.Null{}),
	)
	var buf bytes.Buffer
	if err := ExportCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ImportCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(back) {
		t.Errorf("CSV round-trip changed the relation:\n%s\nvs\n%s",
			rel.CanonicalString(), back.CanonicalString())
	}
}

func TestCSVExportRejectsAggregates(t *testing.T) {
	rel := object.NewSet()
	inner := object.NewTuple()
	inner.Put("nested", object.SetOf(1))
	rel.Add(inner)
	var buf bytes.Buffer
	if err := ExportCSV(&buf, rel); err == nil {
		t.Error("nested set should be rejected")
	}
	rel2 := object.SetOf(5) // non-tuple element
	if err := ExportCSV(&buf, rel2); err == nil {
		t.Error("atom element should be rejected")
	}
}

func TestCSVImportTypes(t *testing.T) {
	csv := "a,b,c,d,e,f\n1,2.5,3/1/85,true,hello,\\N\n"
	rel, err := ImportCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	elems := rel.Elems()
	if len(elems) != 1 {
		t.Fatalf("rows = %d", len(elems))
	}
	tup := elems[0].(*object.Tuple)
	checks := map[string]object.Object{
		"a": object.Int(1),
		"b": object.Float(2.5),
		"c": object.NewDate(85, 3, 1),
		"d": object.Bool(true),
		"e": object.Str("hello"),
		"f": object.Null{},
	}
	for attr, want := range checks {
		got, ok := tup.Get(attr)
		if !ok || !got.Equal(want) {
			t.Errorf("%s = %v, want %v", attr, got, want)
		}
	}
}

func TestCSVImportErrors(t *testing.T) {
	if _, err := ImportCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail (no header)")
	}
	if _, err := ImportCSV(strings.NewReader("a,b\n1,2,3\n")); err == nil {
		t.Error("too many cells should fail")
	}
}

func TestCSVNonDateSlashes(t *testing.T) {
	// Slash strings that are not valid dates stay strings.
	rel, err := ImportCSV(strings.NewReader("a\n99/99/99\n"))
	if err != nil {
		t.Fatal(err)
	}
	tup := rel.Elems()[0].(*object.Tuple)
	v, _ := tup.Get("a")
	if _, isStr := v.(object.Str); !isStr {
		t.Errorf("99/99/99 should stay a string, got %T", v)
	}
}
