// Package storage persists a universe of databases as a JSON snapshot
// with an integrity checksum, using atomic file replacement (write to a
// temp file, fsync, rename). The snapshot format is versioned so future
// layouts can migrate old files.
package storage

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"idl/internal/object"
)

// FormatVersion identifies the snapshot layout produced by this package.
const FormatVersion = 1

// Load failure classes. Each corruption path wraps its own sentinel so
// callers can distinguish "nothing there yet" (ErrEmpty) from "partial
// write" (ErrTruncated) from "bit rot" (ErrChecksum) — recovery treats
// them differently.
var (
	// ErrEmpty reports a zero-length snapshot stream.
	ErrEmpty = errors.New("storage: empty snapshot")
	// ErrTruncated reports a snapshot stream that ends mid-document.
	ErrTruncated = errors.New("storage: truncated snapshot")
	// ErrChecksum reports a complete snapshot whose universe bytes do not
	// match the recorded checksum.
	ErrChecksum = errors.New("storage: snapshot checksum mismatch")
)

// snapshot is the on-disk envelope.
type snapshot struct {
	Format   int             `json:"format"`
	Checksum string          `json:"checksum"` // fnv64a of Universe bytes
	Universe json.RawMessage `json:"universe"`
}

// Save writes the universe to w as a checksummed snapshot.
func Save(w io.Writer, universe *object.Tuple) error {
	raw, err := object.MarshalJSON(universe)
	if err != nil {
		return fmt.Errorf("storage: encode universe: %w", err)
	}
	env := snapshot{
		Format:   FormatVersion,
		Checksum: checksum(raw),
		Universe: raw,
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&env); err != nil {
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot from r, verifying format and checksum.
func Load(r io.Reader) (*object.Tuple, error) {
	var env snapshot
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&env); err != nil {
		switch {
		case errors.Is(err, io.EOF):
			return nil, ErrEmpty
		case errors.Is(err, io.ErrUnexpectedEOF):
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("storage: read snapshot: %w", err)
	}
	if env.Format != FormatVersion {
		return nil, fmt.Errorf("storage: unsupported snapshot format %d (want %d)", env.Format, FormatVersion)
	}
	if got := checksum(env.Universe); got != env.Checksum {
		return nil, fmt.Errorf("%w: %s != %s", ErrChecksum, got, env.Checksum)
	}
	obj, err := object.UnmarshalJSON(env.Universe)
	if err != nil {
		return nil, fmt.Errorf("storage: decode universe: %w", err)
	}
	u, ok := obj.(*object.Tuple)
	if !ok {
		return nil, fmt.Errorf("storage: snapshot root is %s, want tuple", obj.Kind())
	}
	return u, nil
}

// SaveFile writes the universe to path atomically: the snapshot lands in
// a temp file in the same directory, is synced, and replaces path by
// rename, so a crash never leaves a torn snapshot.
func SaveFile(path string, universe *object.Tuple) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".idl-snapshot-*")
	if err != nil {
		return fmt.Errorf("storage: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	bw := bufio.NewWriter(tmp)
	if err := Save(bw, universe); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: flush snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("storage: replace snapshot: %w", err)
	}
	// The rename itself is only durable once the directory entry is: sync
	// the parent, or a crash can resurrect the old snapshot (or nothing).
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open snapshot dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("storage: sync snapshot dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("storage: close snapshot dir: %w", err)
	}
	return nil
}

// LoadFile reads a snapshot file written by SaveFile.
func LoadFile(path string) (*object.Tuple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// SaveFileSized is SaveFile plus the snapshot's on-disk size, for
// callers publishing storage metrics.
func SaveFileSized(path string, universe *object.Tuple) (int64, error) {
	if err := SaveFile(path, universe); err != nil {
		return 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, nil // saved fine; size is best-effort
	}
	return fi.Size(), nil
}

// LoadFileSized is LoadFile plus the snapshot's on-disk size.
func LoadFileSized(path string) (*object.Tuple, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	var size int64
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	u, err := Load(f)
	if err != nil {
		return nil, 0, err
	}
	return u, size, nil
}

func checksum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}
