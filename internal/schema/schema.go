// Package schema implements the metadata extension the paper flags in
// §2 and §8: beyond relation and attribute names, a universe can carry
// declared *types*, *keys*, and *referential integrity* for its
// relations, and the engine enforces them on every update.
//
// Constraints are declarative and checked against the whole universe
// after each (atomic) update request; a violation aborts and rolls the
// request back. Because IDL relations are heterogeneous by design,
// declarations are opt-in per (database, relation): undeclared relations
// stay schemaless, exactly as the core language defines them.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"idl/internal/object"
)

// Type names an atomic kind an attribute must hold. Null is always
// admissible unless the attribute is also Required (the language nulls
// values as part of its update semantics, §5.2).
type Type uint8

// Attribute types.
const (
	AnyType Type = iota
	IntType
	FloatType
	NumberType
	StringType
	DateType
	BoolType
)

// String returns the declaration name of the type.
func (t Type) String() string {
	switch t {
	case AnyType:
		return "any"
	case IntType:
		return "int"
	case FloatType:
		return "float"
	case NumberType:
		return "number"
	case StringType:
		return "string"
	case DateType:
		return "date"
	case BoolType:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// admits reports whether a value satisfies the type. Null is admitted
// (nullability is Required's concern).
func (t Type) admits(v object.Object) bool {
	if _, isNull := v.(object.Null); isNull {
		return true
	}
	switch t {
	case AnyType:
		return true
	case IntType:
		_, ok := v.(object.Int)
		return ok
	case FloatType:
		_, ok := v.(object.Float)
		return ok
	case NumberType:
		switch v.(type) {
		case object.Int, object.Float:
			return true
		}
		return false
	case StringType:
		_, ok := v.(object.Str)
		return ok
	case DateType:
		_, ok := v.(object.Date)
		return ok
	case BoolType:
		_, ok := v.(object.Bool)
		return ok
	default:
		return false
	}
}

// AttrDecl declares one attribute of a relation.
type AttrDecl struct {
	Name string
	Type Type
	// Required attributes must be present and non-null in every tuple.
	Required bool
}

// RelDecl declares constraints for one relation.
type RelDecl struct {
	DB    string
	Rel   string
	Attrs []AttrDecl
	// Key lists attributes that must be unique together across the
	// relation's tuples (tuples missing a key attribute are exempt from
	// the uniqueness check but violate Required if declared so).
	Key []string
	// ForeignKeys reference other relations.
	ForeignKeys []ForeignKey
	// Closed relations reject attributes that are not declared —
	// switching off the language's heterogeneous-tuple freedom for this
	// relation.
	Closed bool
}

// ForeignKey declares that the values of From (in this relation) must
// appear as values of To in relation (RefDB, RefRel).
type ForeignKey struct {
	From   string
	RefDB  string
	RefRel string
	To     string
}

// Violation is one constraint failure.
type Violation struct {
	DB   string
	Rel  string
	Kind string // "type", "required", "key", "foreign-key", "closed"
	Msg  string
}

func (v Violation) Error() string {
	return fmt.Sprintf("schema: %s.%s: %s violation: %s", v.DB, v.Rel, v.Kind, v.Msg)
}

// ViolationError aggregates all violations from one validation pass.
type ViolationError struct {
	Violations []Violation
}

func (e *ViolationError) Error() string {
	if len(e.Violations) == 1 {
		return e.Violations[0].Error()
	}
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.Error()
	}
	return fmt.Sprintf("schema: %d violations: %s", len(e.Violations), strings.Join(parts, "; "))
}

// Registry holds declarations and validates universes against them.
type Registry struct {
	decls map[string]*RelDecl // "db.rel" -> declaration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{decls: make(map[string]*RelDecl)}
}

func key(db, rel string) string { return db + "." + rel }

// Declare registers (or replaces) a relation declaration after sanity
// checks: key and foreign-key attributes must be declared when the
// relation is closed.
func (r *Registry) Declare(d RelDecl) error {
	if d.DB == "" || d.Rel == "" {
		return fmt.Errorf("schema: declaration needs database and relation names")
	}
	declared := map[string]bool{}
	for _, a := range d.Attrs {
		if a.Name == "" {
			return fmt.Errorf("schema: %s.%s: empty attribute name", d.DB, d.Rel)
		}
		if declared[a.Name] {
			return fmt.Errorf("schema: %s.%s: attribute %q declared twice", d.DB, d.Rel, a.Name)
		}
		declared[a.Name] = true
	}
	if d.Closed {
		for _, k := range d.Key {
			if !declared[k] {
				return fmt.Errorf("schema: %s.%s: key attribute %q not declared on closed relation", d.DB, d.Rel, k)
			}
		}
		for _, fk := range d.ForeignKeys {
			if !declared[fk.From] {
				return fmt.Errorf("schema: %s.%s: foreign-key attribute %q not declared on closed relation", d.DB, d.Rel, fk.From)
			}
		}
	}
	cp := d
	cp.Attrs = append([]AttrDecl(nil), d.Attrs...)
	cp.Key = append([]string(nil), d.Key...)
	cp.ForeignKeys = append([]ForeignKey(nil), d.ForeignKeys...)
	r.decls[key(d.DB, d.Rel)] = &cp
	return nil
}

// Drop removes a declaration.
func (r *Registry) Drop(db, rel string) { delete(r.decls, key(db, rel)) }

// Decls returns the declarations sorted by db.rel.
func (r *Registry) Decls() []*RelDecl {
	keys := make([]string, 0, len(r.decls))
	for k := range r.decls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*RelDecl, len(keys))
	for i, k := range keys {
		out[i] = r.decls[k]
	}
	return out
}

// Validate checks the whole universe against every declaration and
// returns nil or a *ViolationError. Missing databases or relations are
// fine (a declaration is a constraint on content, not an existence
// requirement).
func (r *Registry) Validate(universe *object.Tuple) error {
	var all []Violation
	for _, d := range r.Decls() {
		all = append(all, r.validateRel(universe, d)...)
	}
	if len(all) > 0 {
		return &ViolationError{Violations: all}
	}
	return nil
}

func (r *Registry) validateRel(universe *object.Tuple, d *RelDecl) []Violation {
	dbObj, ok := universe.Get(d.DB)
	if !ok {
		return nil
	}
	dbt, ok := dbObj.(*object.Tuple)
	if !ok {
		return nil
	}
	relObj, ok := dbt.Get(d.Rel)
	if !ok {
		return nil
	}
	rel, ok := relObj.(*object.Set)
	if !ok {
		return []Violation{{DB: d.DB, Rel: d.Rel, Kind: "type", Msg: "relation slot does not hold a set"}}
	}
	var out []Violation
	declared := map[string]AttrDecl{}
	for _, a := range d.Attrs {
		declared[a.Name] = a
	}
	seenKeys := map[uint64][]*object.Tuple{}
	rel.Each(func(e object.Object) bool {
		t, ok := e.(*object.Tuple)
		if !ok {
			out = append(out, Violation{DB: d.DB, Rel: d.Rel, Kind: "type",
				Msg: fmt.Sprintf("element %s is not a tuple", e)})
			return true
		}
		// Types & required.
		for _, a := range d.Attrs {
			v, has := t.Get(a.Name)
			if !has {
				if a.Required {
					out = append(out, Violation{DB: d.DB, Rel: d.Rel, Kind: "required",
						Msg: fmt.Sprintf("tuple %s misses required attribute %q", t, a.Name)})
				}
				continue
			}
			if _, isNull := v.(object.Null); isNull && a.Required {
				out = append(out, Violation{DB: d.DB, Rel: d.Rel, Kind: "required",
					Msg: fmt.Sprintf("tuple %s has null required attribute %q", t, a.Name)})
				continue
			}
			if !a.Type.admits(v) {
				out = append(out, Violation{DB: d.DB, Rel: d.Rel, Kind: "type",
					Msg: fmt.Sprintf("attribute %q holds %s %s, want %s", a.Name, v.Kind(), v, a.Type)})
			}
		}
		// Closed relations reject undeclared attributes.
		if d.Closed {
			for _, attr := range t.Attrs() {
				if _, ok := declared[attr]; !ok {
					out = append(out, Violation{DB: d.DB, Rel: d.Rel, Kind: "closed",
						Msg: fmt.Sprintf("undeclared attribute %q", attr)})
				}
			}
		}
		// Key uniqueness.
		if len(d.Key) > 0 {
			if h, complete := keyHash(t, d.Key); complete {
				for _, prev := range seenKeys[h] {
					if keysEqual(prev, t, d.Key) {
						out = append(out, Violation{DB: d.DB, Rel: d.Rel, Kind: "key",
							Msg: fmt.Sprintf("duplicate key %v between %s and %s", d.Key, prev, t)})
						break
					}
				}
				seenKeys[h] = append(seenKeys[h], t)
			}
		}
		// Foreign keys.
		for _, fk := range d.ForeignKeys {
			v, has := t.Get(fk.From)
			if !has {
				continue
			}
			if _, isNull := v.(object.Null); isNull {
				continue
			}
			if !referenced(universe, fk, v) {
				out = append(out, Violation{DB: d.DB, Rel: d.Rel, Kind: "foreign-key",
					Msg: fmt.Sprintf("%s=%s has no match in %s.%s.%s", fk.From, v, fk.RefDB, fk.RefRel, fk.To)})
			}
		}
		return true
	})
	return out
}

// referenced reports whether value appears in column fk.To of the
// referenced relation.
func referenced(universe *object.Tuple, fk ForeignKey, value object.Object) bool {
	dbObj, ok := universe.Get(fk.RefDB)
	if !ok {
		return false
	}
	dbt, ok := dbObj.(*object.Tuple)
	if !ok {
		return false
	}
	relObj, ok := dbt.Get(fk.RefRel)
	if !ok {
		return false
	}
	rel, ok := relObj.(*object.Set)
	if !ok {
		return false
	}
	found := false
	rel.Each(func(e object.Object) bool {
		if t, ok := e.(*object.Tuple); ok {
			if v, has := t.Get(fk.To); has && v.Equal(value) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// Reify renders the registry itself as relations, so IDL queries can ask
// about declared keys and types (the paper's §2 wish applied to the
// extension): returns a tuple holding `types{(db, rel, attr, type,
// required)}` and `keys{(db, rel, attr, pos)}`.
func (r *Registry) Reify() *object.Tuple {
	types := object.NewSet()
	keys := object.NewSet()
	for _, d := range r.Decls() {
		for _, a := range d.Attrs {
			types.Add(object.TupleOf(
				"db", d.DB, "rel", d.Rel, "attr", a.Name,
				"type", a.Type.String(), "required", a.Required))
		}
		for i, k := range d.Key {
			keys.Add(object.TupleOf("db", d.DB, "rel", d.Rel, "attr", k, "pos", i))
		}
	}
	out := object.NewTuple()
	out.Put("types", types)
	out.Put("keys", keys)
	return out
}

func keyHash(t *object.Tuple, attrs []string) (uint64, bool) {
	var h uint64 = 1469598103934665603
	for _, a := range attrs {
		v, ok := t.Get(a)
		if !ok {
			return 0, false
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, true
}

func keysEqual(a, b *object.Tuple, attrs []string) bool {
	for _, attr := range attrs {
		av, aok := a.Get(attr)
		bv, bok := b.Get(attr)
		if !aok || !bok || !av.Equal(bv) {
			return false
		}
	}
	return true
}
