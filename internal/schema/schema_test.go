package schema

import (
	"errors"
	"strings"
	"testing"

	"idl/internal/object"
)

// universeWith builds a universe holding euter.r with the given tuples.
func universeWith(tuples ...*object.Tuple) *object.Tuple {
	rel := object.NewSet()
	for _, t := range tuples {
		rel.Add(t)
	}
	db := object.NewTuple()
	db.Put("r", rel)
	u := object.NewTuple()
	u.Put("euter", db)
	return u
}

func euterDecl() RelDecl {
	return RelDecl{
		DB: "euter", Rel: "r",
		Attrs: []AttrDecl{
			{Name: "date", Type: DateType, Required: true},
			{Name: "stkCode", Type: StringType, Required: true},
			{Name: "clsPrice", Type: NumberType},
		},
		Key: []string{"date", "stkCode"},
	}
}

func TestTypeAdmits(t *testing.T) {
	cases := []struct {
		ty   Type
		v    object.Object
		want bool
	}{
		{IntType, object.Int(5), true},
		{IntType, object.Float(5), false},
		{NumberType, object.Float(5), true},
		{NumberType, object.Int(5), true},
		{NumberType, object.Str("5"), false},
		{StringType, object.Str("x"), true},
		{DateType, object.NewDate(85, 1, 1), true},
		{BoolType, object.Bool(true), true},
		{AnyType, object.SetOf(1), true},
		{IntType, object.Null{}, true}, // null admitted by every type
	}
	for _, c := range cases {
		if got := c.ty.admits(c.v); got != c.want {
			t.Errorf("%s.admits(%s) = %v, want %v", c.ty, c.v, got, c.want)
		}
	}
}

func TestValidateOK(t *testing.T) {
	r := NewRegistry()
	if err := r.Declare(euterDecl()); err != nil {
		t.Fatal(err)
	}
	u := universeWith(
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50),
		object.TupleOf("date", object.NewDate(85, 3, 2), "stkCode", "hp", "clsPrice", 55.5),
	)
	if err := r.Validate(u); err != nil {
		t.Errorf("valid universe rejected: %v", err)
	}
}

func TestTypeViolation(t *testing.T) {
	r := NewRegistry()
	if err := r.Declare(euterDecl()); err != nil {
		t.Fatal(err)
	}
	u := universeWith(object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", "fifty"))
	err := r.Validate(u)
	var ve *ViolationError
	if !errors.As(err, &ve) || ve.Violations[0].Kind != "type" {
		t.Errorf("want type violation, got %v", err)
	}
}

func TestRequiredViolation(t *testing.T) {
	r := NewRegistry()
	if err := r.Declare(euterDecl()); err != nil {
		t.Fatal(err)
	}
	for _, tup := range []*object.Tuple{
		object.TupleOf("date", object.NewDate(85, 3, 1), "clsPrice", 50),                           // missing
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", object.Null{}, "clsPrice", 50), // null
	} {
		err := r.Validate(universeWith(tup))
		var ve *ViolationError
		if !errors.As(err, &ve) || ve.Violations[0].Kind != "required" {
			t.Errorf("tuple %s: want required violation, got %v", tup, err)
		}
	}
}

func TestKeyViolation(t *testing.T) {
	r := NewRegistry()
	if err := r.Declare(euterDecl()); err != nil {
		t.Fatal(err)
	}
	u := universeWith(
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50),
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 51),
	)
	err := r.Validate(u)
	var ve *ViolationError
	if !errors.As(err, &ve) || ve.Violations[0].Kind != "key" {
		t.Errorf("want key violation, got %v", err)
	}
	// Different stock on the same day is fine.
	u2 := universeWith(
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50),
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "ibm", "clsPrice", 140),
	)
	if err := r.Validate(u2); err != nil {
		t.Errorf("distinct keys rejected: %v", err)
	}
}

func TestClosedRelation(t *testing.T) {
	r := NewRegistry()
	d := euterDecl()
	d.Closed = true
	if err := r.Declare(d); err != nil {
		t.Fatal(err)
	}
	u := universeWith(object.TupleOf(
		"date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50, "extra", 1))
	err := r.Validate(u)
	var ve *ViolationError
	if !errors.As(err, &ve) || ve.Violations[0].Kind != "closed" {
		t.Errorf("want closed violation, got %v", err)
	}
}

func TestForeignKey(t *testing.T) {
	r := NewRegistry()
	if err := r.Declare(RelDecl{
		DB: "euter", Rel: "r",
		ForeignKeys: []ForeignKey{{From: "stkCode", RefDB: "ref", RefRel: "listed", To: "code"}},
	}); err != nil {
		t.Fatal(err)
	}
	u := universeWith(object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50))
	// No reference data at all: violation.
	err := r.Validate(u)
	var ve *ViolationError
	if !errors.As(err, &ve) || ve.Violations[0].Kind != "foreign-key" {
		t.Fatalf("want fk violation, got %v", err)
	}
	// Add the referenced code.
	ref := object.NewTuple()
	ref.Put("listed", object.SetOf(object.TupleOf("code", "hp")))
	u.Put("ref", ref)
	if err := r.Validate(u); err != nil {
		t.Errorf("satisfied fk rejected: %v", err)
	}
	// Null FK values are exempt.
	rel, _ := u.Get("euter")
	set, _ := rel.(*object.Tuple).Get("r")
	set.(*object.Set).Add(object.TupleOf("date", object.NewDate(85, 3, 2), "stkCode", object.Null{}))
	if err := r.Validate(u); err != nil {
		t.Errorf("null fk rejected: %v", err)
	}
}

func TestUndeclaredRelationsUnchecked(t *testing.T) {
	r := NewRegistry()
	if err := r.Declare(euterDecl()); err != nil {
		t.Fatal(err)
	}
	// A universe without euter at all passes.
	u := object.NewTuple()
	other := object.NewTuple()
	other.Put("whatever", object.SetOf(object.TupleOf("x", "anything")))
	u.Put("free", other)
	if err := r.Validate(u); err != nil {
		t.Errorf("undeclared content rejected: %v", err)
	}
}

func TestDeclareValidation(t *testing.T) {
	r := NewRegistry()
	bad := []RelDecl{
		{DB: "", Rel: "r"},
		{DB: "d", Rel: "r", Attrs: []AttrDecl{{Name: ""}}},
		{DB: "d", Rel: "r", Attrs: []AttrDecl{{Name: "a"}, {Name: "a"}}},
		{DB: "d", Rel: "r", Closed: true, Key: []string{"missing"}},
		{DB: "d", Rel: "r", Closed: true, ForeignKeys: []ForeignKey{{From: "missing"}}},
	}
	for i, d := range bad {
		if err := r.Declare(d); err == nil {
			t.Errorf("declaration %d should fail", i)
		}
	}
}

func TestDropAndDecls(t *testing.T) {
	r := NewRegistry()
	r.Declare(euterDecl())
	r.Declare(RelDecl{DB: "a", Rel: "b"})
	decls := r.Decls()
	if len(decls) != 2 || decls[0].DB != "a" {
		t.Errorf("decls = %v", decls)
	}
	r.Drop("a", "b")
	if len(r.Decls()) != 1 {
		t.Error("drop failed")
	}
}

func TestMultipleViolationsAggregate(t *testing.T) {
	r := NewRegistry()
	r.Declare(euterDecl())
	u := universeWith(
		object.TupleOf("stkCode", "hp"),                    // missing required date
		object.TupleOf("date", "notadate", "stkCode", "x"), // type
	)
	err := r.Validate(u)
	var ve *ViolationError
	if !errors.As(err, &ve) || len(ve.Violations) < 2 {
		t.Errorf("want ≥2 violations, got %v", err)
	}
	if !strings.Contains(ve.Error(), "violations") {
		t.Errorf("aggregate message: %v", ve)
	}
}

func TestNonTupleElementViolation(t *testing.T) {
	r := NewRegistry()
	r.Declare(RelDecl{DB: "euter", Rel: "r", Attrs: []AttrDecl{{Name: "x", Type: IntType}}})
	rel := object.SetOf(5) // atom element
	db := object.NewTuple()
	db.Put("r", rel)
	u := object.NewTuple()
	u.Put("euter", db)
	if err := r.Validate(u); err == nil {
		t.Error("atom element should violate")
	}
}

func TestReify(t *testing.T) {
	r := NewRegistry()
	r.Declare(euterDecl())
	out := r.Reify()
	types, _ := out.Get("types")
	keys, _ := out.Get("keys")
	if types.(*object.Set).Len() != 3 {
		t.Errorf("types = %s", types)
	}
	if keys.(*object.Set).Len() != 2 {
		t.Errorf("keys = %s", keys)
	}
	if !keys.(*object.Set).Contains(object.TupleOf("db", "euter", "rel", "r", "attr", "date", "pos", 0)) {
		t.Error("key tuple missing")
	}
}
