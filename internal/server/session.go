package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"idl"
)

// Sessions. A session is per-tenant server-side state: the prepared
// statements a connection has compiled. Sessions are addressed by
// (tenant, id) — the key includes the tenant, so one tenant can never
// reach another's prepared statements even by guessing IDs. The table
// is bounded: creation sweeps expired sessions first and refuses when
// the bound still holds, so an open-loop client leak cannot grow server
// memory without limit. IDs are minted from a plain counter — they are
// names, not secrets (isolation comes from the tenant key), and
// deterministic IDs keep wire transcripts byte-stable.

type session struct {
	id     string
	tenant string

	mu       sync.Mutex
	prepared map[string]*idl.Prepared
	nextStmt int
	lastUsed time.Time // guarded by the table's mutex
}

// put files a prepared statement under the next ID ("p1", "p2", …).
func (s *session) put(p *idl.Prepared) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextStmt++
	id := fmt.Sprintf("p%d", s.nextStmt)
	s.prepared[id] = p
	return id
}

// lookup returns the prepared statement under id (nil when absent).
func (s *session) lookup(id string) *idl.Prepared {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prepared[id]
}

// close drops the prepared statement under id, reporting whether it
// existed.
func (s *session) close(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.prepared[id]
	delete(s.prepared, id)
	return ok
}

// ids lists the session's prepared statement IDs, sorted.
func (s *session) ids() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.prepared))
	for id := range s.prepared {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

type sessionTable struct {
	idle time.Duration // idle expiry bound
	max  int           // live session bound

	mu    sync.Mutex
	byKey map[string]*session
	seq   uint64
}

func newSessionTable(idle time.Duration, max int) *sessionTable {
	return &sessionTable{idle: idle, max: max, byKey: make(map[string]*session)}
}

// sessionKey scopes a session ID to its tenant. The NUL separator
// cannot appear in either part (tenant names are validated, IDs are
// minted), so keys never collide across tenants.
func sessionKey(tenant, id string) string { return tenant + "\x00" + id }

// get returns tenant's session id, touching its idle clock; nil when
// the session does not exist (or belongs to another tenant).
func (t *sessionTable) get(tenant, id string, now time.Time) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.byKey[sessionKey(tenant, id)]
	if s != nil {
		s.lastUsed = now
	}
	return s
}

// create mints a session for tenant. A full table sweeps expired
// sessions first and refuses when still at the bound.
func (t *sessionTable) create(tenant string, now time.Time) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.byKey) >= t.max {
		t.sweepLocked(now)
		if len(t.byKey) >= t.max {
			return nil, fmt.Errorf("server: session table full (%d live sessions)", len(t.byKey))
		}
	}
	t.seq++
	s := &session{
		id:       fmt.Sprintf("s%d", t.seq),
		tenant:   tenant,
		prepared: make(map[string]*idl.Prepared),
		lastUsed: now,
	}
	t.byKey[sessionKey(tenant, s.id)] = s
	return s, nil
}

// sweep drops sessions idle past the bound, returning how many.
func (t *sessionTable) sweep(now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sweepLocked(now)
}

func (t *sessionTable) sweepLocked(now time.Time) int {
	dropped := 0
	for key, s := range t.byKey {
		if now.Sub(s.lastUsed) > t.idle {
			delete(t.byKey, key)
			dropped++
		}
	}
	return dropped
}

// len reports the live session count.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byKey)
}
