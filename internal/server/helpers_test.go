package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"idl"
	"idl/internal/object"
	"idl/internal/server"
	"idl/internal/workload"
)

// demoDB builds the paper's three stock databases — the same universe
// cmd/idl -demo serves, so transcript answers match the shell's.
func demoDB(t *testing.T) *idl.DB {
	t.Helper()
	cfg := workload.Default()
	cfg.Demo = true
	db, err := workload.Open(cfg)
	if err != nil {
		t.Fatalf("demo universe: %v", err)
	}
	return db
}

// newServer wires a Server over db into an httptest listener.
func newServer(t *testing.T, db *idl.DB, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// gateSource is a federated member whose sync blocks until the gate
// channel closes — the deterministic way to hold admitted requests
// inflight while the tests probe shedding and drain. Relations honors
// the context so deadline tests still complete.
type gateSource struct {
	gate chan struct{}
	once sync.Once
}

func newGate() *gateSource { return &gateSource{gate: make(chan struct{})} }

// open releases every blocked sync; idempotent so tests can defer it
// (a test failing before open must not hang the listener's Close).
func (g *gateSource) open() { g.once.Do(func() { close(g.gate) }) }

func (g *gateSource) Name() string { return "gate" }

func (g *gateSource) Relations(ctx context.Context) ([]string, error) {
	select {
	case <-g.gate:
		return []string{"r"}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gateSource) Scan(ctx context.Context, rel string, yield func(object.Object) bool) error {
	return nil
}

func (g *gateSource) Attributes(ctx context.Context, rel string) ([]string, error) {
	return nil, nil
}

// staticSource is an always-available empty member, for Sync churn.
type staticSource struct{ name string }

func (s *staticSource) Name() string                                         { return s.name }
func (s *staticSource) Relations(context.Context) ([]string, error)          { return []string{"r"}, nil }
func (s *staticSource) Attributes(context.Context, string) ([]string, error) { return nil, nil }
func (s *staticSource) Scan(ctx context.Context, rel string, yield func(object.Object) bool) error {
	return nil
}

// wireCall is one raw request; it returns status, trimmed body, and
// response headers without the Client's conveniences, so tests see the
// wire exactly.
func wireCall(t *testing.T, base, method, path string, headers map[string]string, body string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.Close {
		// The transport consumes the hop-by-hop Connection header into
		// resp.Close; reify it so tests can assert the drain signal.
		resp.Header.Set("Connection", "close")
	}
	return resp.StatusCode, strings.TrimRight(string(b), "\n"), resp.Header
}

// stmtBody renders a StatementRequest body.
func stmtBody(t *testing.T, stmt string) string {
	t.Helper()
	b, err := json.Marshal(server.StatementRequest{Stmt: stmt})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// waitInflight polls until the server reports n admitted requests.
func waitInflight(t *testing.T, srv *server.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Inflight() != n {
		if time.Now().After(deadline) {
			t.Fatalf("inflight never reached %d (now %d)", n, srv.Inflight())
		}
		time.Sleep(time.Millisecond)
	}
}
