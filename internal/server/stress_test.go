package server_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idl"
	"idl/internal/server"
)

// TestConcurrentStress hammers the server from many client goroutines
// with a mixed query/exec/prepared workload while a churn goroutine
// mounts, syncs and unmounts a federated member — the exact interleaving
// the admission gate, the session table and the facade's sync path must
// survive. Run under -race this is the server's data-race battery; the
// assertions check no request failed, no session state was dropped, and
// the server's request counter accounts for every request sent.
func TestConcurrentStress(t *testing.T) {
	db := demoDB(t)
	db.EnableInsights(idl.InsightsConfig{})
	srv, ts := newServer(t, db, server.Config{
		MaxInflight:    64,
		TenantInflight: 64,
		RequestTimeout: 30 * time.Second,
	})

	const (
		clients = 8
		rounds  = 25
	)

	// Membership churn: mount/sync/unmount an extra member concurrently
	// with the request load, so snapshots install and drop mid-flight.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		src := &staticSource{name: "churn"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Mount("churn", src); err != nil {
				t.Errorf("mount: %v", err)
				return
			}
			if _, err := db.Sync(context.Background()); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
			if err := db.Unmount("churn"); err != nil {
				t.Errorf("unmount: %v", err)
				return
			}
		}
	}()

	// The unified view the queries hit, registered before any client runs.
	for _, rule := range []string{
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
	} {
		if err := db.DefineView(rule); err != nil {
			t.Fatalf("view: %v", err)
		}
	}

	var sent atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			c := server.NewClient(ts.URL)
			c.Tenant = fmt.Sprintf("tenant%d", g)

			// Each client prepares once and reuses the statement all run —
			// if the session table drops or cross-wires state under load,
			// these calls start failing.
			p, err := c.Prepare(ctx, "?.euter.r(.stkCode=S, .clsPrice>100)")
			if err != nil {
				t.Errorf("client %d prepare: %v", g, err)
				return
			}
			sent.Add(1)
			for i := 0; i < rounds; i++ {
				if _, err := c.Query(ctx, "?.dbI.p(.stk=S, .price>100)"); err != nil {
					t.Errorf("client %d query %d: %v", g, i, err)
					return
				}
				if _, err := c.ExecPrepared(ctx, p.ID); err != nil {
					t.Errorf("client %d prepared %d: %v", g, i, err)
					return
				}
				stmt := fmt.Sprintf("?.euter.r+(.date=9/9/85, .stkCode=t%dr%d, .clsPrice=%d)", g, i, i+1)
				if _, err := c.Exec(ctx, stmt); err != nil {
					t.Errorf("client %d exec %d: %v", g, i, err)
					return
				}
				sent.Add(3)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()

	if t.Failed() {
		return
	}
	// Every request was admitted and succeeded: the counter matches the
	// exact number of requests the clients sent, and none shed or errored.
	reg := db.Metrics()
	if got := reg.Counter("server.requests").Value(); got != sent.Load() {
		t.Errorf("server.requests = %d, want %d", got, sent.Load())
	}
	if got := reg.Counter("server.shed").Value(); got != 0 {
		t.Errorf("server.shed = %d, want 0", got)
	}
	if got := reg.Counter("server.errors").Value(); got != 0 {
		t.Errorf("server.errors = %d, want 0", got)
	}
	// No dropped session state: one live session per client, each still
	// holding its prepared statement.
	if got := srv.Sessions(); got != clients {
		t.Errorf("sessions = %d, want %d", got, clients)
	}
	// Digest accounting: the query digests' call counts must sum to the
	// number of evaluating statements the engine saw (server requests
	// minus the prepare calls, which compile without evaluating).
	digests, err := db.Statements()
	if err != nil {
		t.Fatalf("statements: %v", err)
	}
	var calls uint64
	for _, d := range digests {
		calls += d.Calls
	}
	wantCalls := sent.Load() - clients // prepares don't evaluate
	if calls != wantCalls {
		t.Errorf("digest calls = %d, want %d", calls, wantCalls)
	}
}
