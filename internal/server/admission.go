package server

import "sync"

// Admission control. The gate bounds work the server accepts rather
// than queueing it: an open-loop overload must shed (429 + Retry-After)
// instead of building an unbounded queue of goroutines all waiting on
// the engine. Two bounds apply — a global max-inflight and a per-tenant
// cap — so one tenant saturating the server cannot starve the others of
// every slot (per-tenant fairness). Draining closes the gate entirely;
// because the draining flag and the inflight counters share one mutex,
// a drainer that has flipped the flag can trust a zero inflight count:
// no admission can slip in afterward.

// admitResult is the outcome of one admission attempt.
type admitResult int

const (
	admitted       admitResult = iota
	shedServer                 // global max-inflight reached
	shedTenant                 // tenant's fair share reached
	refuseDraining             // server is draining; no new work
)

type admission struct {
	max       int // global inflight bound
	perTenant int // per-tenant inflight bound

	mu       sync.Mutex
	inflight int
	tenants  map[string]int
	draining bool
}

func newAdmission(max, perTenant int) *admission {
	return &admission{max: max, perTenant: perTenant, tenants: make(map[string]int)}
}

// tryAcquire claims one slot for tenant without blocking.
func (a *admission) tryAcquire(tenant string) admitResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case a.draining:
		return refuseDraining
	case a.inflight >= a.max:
		return shedServer
	case a.tenants[tenant] >= a.perTenant:
		return shedTenant
	}
	a.inflight++
	a.tenants[tenant]++
	return admitted
}

// release returns tenant's slot.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	if n := a.tenants[tenant] - 1; n <= 0 {
		delete(a.tenants, tenant)
	} else {
		a.tenants[tenant] = n
	}
}

// current reports the admitted-and-executing request count.
func (a *admission) current() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// beginDrain closes the gate. After it returns no request can acquire a
// slot, so once current reaches zero it stays zero.
func (a *admission) beginDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// drainingNow reports whether the gate is closed.
func (a *admission) drainingNow() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}
