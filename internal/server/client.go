package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Client speaks the wire protocol. It carries the connection-ish state
// a wire session needs — tenant, session ID (adopted automatically from
// response headers), trace ID, per-request timeout — and is used by
// cmd/idlload, the replay-to-server path and the test battery. A Client
// is safe for sequential use; concurrent callers should clone one per
// goroutine (sessions are per-connection state).
type Client struct {
	Base    string // server base URL, e.g. http://127.0.0.1:8089
	Tenant  string // X-Tenant; empty means the server default
	Session string // X-Session-Id; adopted from responses when minted
	TraceID string // X-Trace-Id; empty means server/facade minting
	Timeout int    // X-Timeout-Ms; 0 means the server default
	HTTP    *http.Client
}

// NewClient returns a client for base (trailing slash trimmed).
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: http.DefaultClient}
}

// Clone returns an independent client sharing the transport but not
// the session.
func (c *Client) Clone() *Client {
	cp := *c
	cp.Session = ""
	return &cp
}

// StatusError is a non-2xx wire response.
type StatusError struct {
	Code int
	Msg  string // the server's ErrorResponse.Error
}

func (e *StatusError) Error() string { return fmt.Sprintf("server: %d: %s", e.Code, e.Msg) }

// IsShed reports whether the response was an admission-control 429.
func (e *StatusError) IsShed() bool { return e.Code == http.StatusTooManyRequests }

// do sends one request and decodes the response into out (ignored when
// nil). Non-2xx responses return a *StatusError carrying the server's
// error string.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(HeaderTenant, c.Tenant)
	}
	if c.Session != "" {
		req.Header.Set(HeaderSession, c.Session)
	}
	if c.TraceID != "" {
		req.Header.Set(HeaderTrace, c.TraceID)
	}
	if c.Timeout > 0 {
		req.Header.Set(HeaderTimeout, strconv.Itoa(c.Timeout))
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if sid := resp.Header.Get(HeaderSession); sid != "" {
		c.Session = sid
	}
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&er); err == nil && er.Error != "" {
			msg = er.Error
		}
		return &StatusError{Code: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Query evaluates a read-only query.
func (c *Client) Query(ctx context.Context, stmt string) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", StatementRequest{Stmt: stmt}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Exec runs an update request or program call.
func (c *Client) Exec(ctx context.Context, stmt string) (*ExecResponse, error) {
	var out ExecResponse
	if err := c.do(ctx, http.MethodPost, "/v1/exec", StatementRequest{Stmt: stmt}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rule registers a view rule.
func (c *Client) Rule(ctx context.Context, stmt string) error {
	return c.do(ctx, http.MethodPost, "/v1/rule", StatementRequest{Stmt: stmt}, nil)
}

// Clause registers an update-program clause.
func (c *Client) Clause(ctx context.Context, stmt string) error {
	return c.do(ctx, http.MethodPost, "/v1/clause", StatementRequest{Stmt: stmt}, nil)
}

// Prepare compiles a prepared statement server-side, minting a session
// when the client has none (the ID is adopted for later calls).
func (c *Client) Prepare(ctx context.Context, stmt string) (*PrepareResponse, error) {
	var out PrepareResponse
	if err := c.do(ctx, http.MethodPost, "/v1/prepare", StatementRequest{Stmt: stmt}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ExecPrepared executes a prepared statement in the client's session.
func (c *Client) ExecPrepared(ctx context.Context, id string) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/exec-prepared", PreparedRequest{ID: id}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClosePrepared drops a prepared statement from the client's session.
func (c *Client) ClosePrepared(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/close-prepared", PreparedRequest{ID: id}, nil)
}

// SessionInfo describes the client's server-side session.
func (c *Client) SessionInfo(ctx context.Context) (*SessionResponse, error) {
	var out SessionResponse
	if err := c.do(ctx, http.MethodGet, "/v1/session", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes liveness; it returns the body even on 503 (draining).
func (c *Client) Healthz(ctx context.Context) (*HealthzResponse, error) {
	var out HealthzResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusServiceUnavailable {
			return &HealthzResponse{Status: "draining"}, nil
		}
		return nil, err
	}
	return &out, nil
}

// Health fetches the DB's health report as raw JSON.
func (c *Client) Health(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/health", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
