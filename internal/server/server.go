// Package server is the idld wire protocol: an HTTP/JSON front end
// over the idl.DB facade for multi-tenant serving, with per-connection
// sessions holding server-side prepared statements, admission control
// (max-inflight shedding with per-tenant fairness), request deadlines
// threaded into the engine's context plumbing, trace-ID adoption, and
// graceful drain.
//
// Endpoints (request/response bodies in wire.go):
//
//	POST /v1/query           evaluate a read-only query
//	POST /v1/exec            run an update request or program call
//	POST /v1/rule            register a view rule
//	POST /v1/clause          register an update-program clause
//	POST /v1/prepare         compile a prepared statement into a session
//	POST /v1/exec-prepared   execute a session's prepared statement
//	POST /v1/close-prepared  drop a prepared statement
//	GET  /v1/session         describe the caller's session
//	GET  /v1/health          the DB's rolling-window health report
//	GET  /healthz            liveness/readiness (503 while draining)
//	     /debug/...          the shared observability endpoints
//	                         (Config.Debug; see RegisterDebug)
//
// Request state machine: a request is refused while draining (503,
// Connection: close), shed when the global or per-tenant inflight bound
// is reached (429, Retry-After), and otherwise admitted — it then runs
// under a deadline (the server default, lowered per-request by
// X-Timeout-Ms) whose expiry surfaces as 504. Session state machine:
// Prepare without X-Session-Id mints a session (returned in the
// response header); subsequent requests address it with the header,
// scoped to the tenant; sessions expire after Config.SessionIdle of
// disuse. Drain sequence: BeginDrain closes the admission gate, Drain
// waits for inflight work to reach zero and then checkpoints the WAL
// (when one is attached) so a restart replays nothing.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"idl"
	"idl/internal/federation"
	"idl/internal/obs"
	"idl/internal/qlog"
)

// maxBodyBytes bounds a request body; statements are small.
const maxBodyBytes = 1 << 20

// Config tunes one Server. The zero value takes production defaults.
type Config struct {
	// MaxInflight bounds admitted requests across all tenants
	// (default 64). Excess requests shed with 429, never queue.
	MaxInflight int
	// TenantInflight bounds one tenant's admitted requests
	// (default MaxInflight/4, minimum 1) so a single tenant cannot
	// hold every slot.
	TenantInflight int
	// RequestTimeout is the default per-request deadline (default 5s).
	RequestTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 30s).
	MaxTimeout time.Duration
	// SessionIdle expires sessions unused this long (default 10m).
	SessionIdle time.Duration
	// MaxSessions bounds the session table (default 1024).
	MaxSessions int
	// DefaultTenant names requests without X-Tenant (default "public").
	DefaultTenant string
	// SLOTarget/SLOObjective parameterize the per-endpoint SLO trackers
	// (defaults 100ms at 0.999).
	SLOTarget    time.Duration
	SLOObjective float64
	// Debug mounts the shared /debug/ observability endpoints on the
	// server's mux (the same handlers cmd/idl's -debug-addr serves).
	Debug bool
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.TenantInflight <= 0 {
		c.TenantInflight = max(1, c.MaxInflight/4)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.SessionIdle <= 0 {
		c.SessionIdle = 10 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = "public"
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 100 * time.Millisecond
	}
	if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
		c.SLOObjective = 0.999
	}
	return c
}

// Server fronts one DB. Create with New, serve Handler, stop with
// Drain. Safe for concurrent use.
type Server struct {
	db       *idl.DB
	cfg      Config
	reg      *idl.MetricsRegistry
	adm      *admission
	sessions *sessionTable
	mux      *http.ServeMux
	slos     map[string]*obs.SLOTracker
}

// New builds a server over db. Serving turns metrics on: admission
// decisions, SLO gates and the load harness all read the registry.
func New(db *idl.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:       db,
		cfg:      cfg,
		reg:      db.Metrics(),
		adm:      newAdmission(cfg.MaxInflight, cfg.TenantInflight),
		sessions: newSessionTable(cfg.SessionIdle, cfg.MaxSessions),
		mux:      http.NewServeMux(),
	}
	// SLO trackers for the evaluating endpoints; rule/clause/session
	// traffic is administrative and stays out of the burn rate.
	s.slos = map[string]*obs.SLOTracker{
		"query":    s.reg.SLO("server.query", cfg.SLOTarget, cfg.SLOObjective),
		"exec":     s.reg.SLO("server.exec", cfg.SLOTarget, cfg.SLOObjective),
		"prepared": s.reg.SLO("server.prepared", cfg.SLOTarget, cfg.SLOObjective),
	}
	s.mux.HandleFunc("POST /v1/query", s.handle("query", true, s.handleQuery))
	s.mux.HandleFunc("POST /v1/exec", s.handle("exec", true, s.handleExec))
	s.mux.HandleFunc("POST /v1/rule", s.handle("rule", true, s.handleRule))
	s.mux.HandleFunc("POST /v1/clause", s.handle("clause", true, s.handleClause))
	s.mux.HandleFunc("POST /v1/prepare", s.handle("prepare", true, s.handlePrepare))
	s.mux.HandleFunc("POST /v1/exec-prepared", s.handle("prepared", true, s.handleExecPrepared))
	s.mux.HandleFunc("POST /v1/close-prepared", s.handle("close", true, s.handleClosePrepared))
	s.mux.HandleFunc("GET /v1/session", s.handle("session", false, s.handleSession))
	s.mux.HandleFunc("GET /v1/health", s.handle("health", false, s.handleHealth))
	s.mux.HandleFunc("GET /healthz", s.handle("healthz", false, s.handleHealthz))
	if cfg.Debug {
		RegisterDebug(s.mux, db)
	}
	return s
}

// Handler returns the server's mux.
func (s *Server) Handler() http.Handler { return s.mux }

// DB returns the served database.
func (s *Server) DB() *idl.DB { return s.db }

// Inflight reports admitted requests currently executing.
func (s *Server) Inflight() int { return s.adm.current() }

// Sessions reports the live session count.
func (s *Server) Sessions() int { return s.sessions.len() }

// SweepSessions expires sessions idle past Config.SessionIdle as of
// now, returning how many were dropped. cmd/idld runs this on a timer;
// session creation also sweeps when the table is full.
func (s *Server) SweepSessions(now time.Time) int {
	n := s.sessions.sweep(now)
	if n > 0 {
		s.reg.Counter("server.sessions.expired").Add(uint64(n))
	}
	return n
}

// BeginDrain closes the admission gate: every subsequent request is
// refused with 503 + Connection: close. Idempotent.
func (s *Server) BeginDrain() { s.adm.beginDrain() }

// Draining reports whether the admission gate is closed.
func (s *Server) Draining() bool { return s.adm.drainingNow() }

// Drain performs the graceful-drain sequence: close the admission gate,
// wait until every admitted request has finished (bounded by ctx), then
// checkpoint the WAL when one is attached so a restart replays nothing.
// Inflight requests complete normally — drain never cancels work.
func (s *Server) Drain(ctx context.Context) error {
	s.adm.beginDrain()
	for s.adm.current() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %d requests still inflight: %w", s.adm.current(), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if _, ok := s.db.WALStatus(); ok {
		if _, err := s.db.Checkpoint(); err != nil {
			return fmt.Errorf("server: drain checkpoint: %w", err)
		}
	}
	return nil
}

// handlerFunc is one endpoint's logic: it returns the status and body;
// the wrapper owns admission, deadlines, headers, metrics and encoding.
type handlerFunc func(ctx context.Context, w http.ResponseWriter, r *http.Request, tenant string) (int, any)

// handle wraps an endpoint with the shared request machinery. admit
// routes the request through the admission gate (and the drain
// refusal); probe endpoints skip it so load balancers can watch a
// saturated or draining server.
func (s *Server) handle(op string, admit bool, fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get(HeaderTenant)
		if tenant == "" {
			tenant = s.cfg.DefaultTenant
		}
		if !validTenant(tenant) {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("server: invalid tenant %q", tenant)})
			return
		}
		s.reg.Counter("server.requests").Inc()
		s.reg.Counter("server.tenant." + tenant + ".requests").Inc()
		if tid := r.Header.Get(HeaderTrace); tid != "" {
			w.Header().Set(HeaderTrace, tid)
		}
		if admit {
			switch s.adm.tryAcquire(tenant) {
			case refuseDraining:
				s.reg.Counter("server.drain_rejects").Inc()
				w.Header().Set("Connection", "close")
				writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server: draining, not accepting new requests"})
				return
			case shedServer:
				s.shed(w, tenant, "server at max inflight")
				return
			case shedTenant:
				s.shed(w, tenant, fmt.Sprintf("tenant %q at max inflight", tenant))
				return
			}
			defer s.adm.release(tenant)
		}
		ctx, cancel := s.requestContext(r)
		defer cancel()
		start := time.Now()
		status, body := fn(ctx, w, r, tenant)
		if admit {
			d := time.Since(start)
			s.reg.Window("server." + op + ".latency").Observe(d)
			if slo := s.slos[op]; slo != nil {
				slo.Observe(d, status >= http.StatusInternalServerError)
			}
			if status >= http.StatusBadRequest {
				s.reg.Counter("server.errors").Inc()
			}
		}
		writeJSON(w, status, body)
	}
}

// shed refuses one request with 429 + Retry-After.
func (s *Server) shed(w http.ResponseWriter, tenant, reason string) {
	s.reg.Counter("server.shed").Inc()
	s.reg.Counter("server.tenant." + tenant + ".shed").Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "server: " + reason + ", retry later"})
}

// requestContext derives the request's engine context: the caller's
// trace ID (adopted by the facade instead of minting) and the request
// deadline — the server default, lowered or raised per-request by
// X-Timeout-Ms up to Config.MaxTimeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if tid := r.Header.Get(HeaderTrace); tid != "" {
		ctx = qlog.WithTraceID(ctx, tid)
	}
	d := s.cfg.RequestTimeout
	if v := r.Header.Get(HeaderTimeout); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			d = min(time.Duration(ms)*time.Millisecond, s.cfg.MaxTimeout)
		}
	}
	return context.WithTimeout(ctx, d)
}

func (s *Server) handleQuery(ctx context.Context, _ http.ResponseWriter, r *http.Request, _ string) (int, any) {
	var req StatementRequest
	if err := decode(r, &req); err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	ans, err := s.db.QueryCtx(ctx, req.Stmt)
	if err != nil {
		return statusFor(err), ErrorResponse{Error: err.Error()}
	}
	return http.StatusOK, queryResponse(ans)
}

func (s *Server) handleExec(ctx context.Context, _ http.ResponseWriter, r *http.Request, _ string) (int, any) {
	var req StatementRequest
	if err := decode(r, &req); err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	info, err := s.db.ExecCtx(ctx, req.Stmt)
	if err != nil {
		return statusFor(err), ErrorResponse{Error: err.Error()}
	}
	return http.StatusOK, ExecResponse{Exec: qlog.ExecSummary{
		ElemsInserted: info.ElemsInserted,
		ElemsDeleted:  info.ElemsDeleted,
		AttrsCreated:  info.AttrsCreated,
		AttrsDeleted:  info.AttrsDeleted,
		ValuesSet:     info.ValuesSet,
		Bindings:      info.Bindings,
	}}
}

func (s *Server) handleRule(_ context.Context, _ http.ResponseWriter, r *http.Request, _ string) (int, any) {
	var req StatementRequest
	if err := decode(r, &req); err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	if err := s.db.DefineView(req.Stmt); err != nil {
		return statusFor(err), ErrorResponse{Error: err.Error()}
	}
	return http.StatusOK, OKResponse{OK: true}
}

func (s *Server) handleClause(_ context.Context, _ http.ResponseWriter, r *http.Request, _ string) (int, any) {
	var req StatementRequest
	if err := decode(r, &req); err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	if err := s.db.DefineProgram(req.Stmt); err != nil {
		return statusFor(err), ErrorResponse{Error: err.Error()}
	}
	return http.StatusOK, OKResponse{OK: true}
}

func (s *Server) handlePrepare(_ context.Context, w http.ResponseWriter, r *http.Request, tenant string) (int, any) {
	var req StatementRequest
	if err := decode(r, &req); err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	var sess *session
	if sid := r.Header.Get(HeaderSession); sid != "" {
		if sess = s.sessions.get(tenant, sid, time.Now()); sess == nil {
			return http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("server: unknown session %q for tenant %q", sid, tenant)}
		}
	} else {
		var err error
		if sess, err = s.sessions.create(tenant, time.Now()); err != nil {
			return http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()}
		}
	}
	p, err := s.db.Prepare(req.Stmt)
	if err != nil {
		return statusFor(err), ErrorResponse{Error: err.Error()}
	}
	w.Header().Set(HeaderSession, sess.id)
	return http.StatusOK, PrepareResponse{ID: sess.put(p), Text: p.Text(), Session: sess.id}
}

// sessionOf resolves the request's session header for endpoints that
// require an existing session.
func (s *Server) sessionOf(r *http.Request, tenant string) (*session, int, any) {
	sid := r.Header.Get(HeaderSession)
	if sid == "" {
		return nil, http.StatusBadRequest, ErrorResponse{Error: "server: missing " + HeaderSession + " header"}
	}
	sess := s.sessions.get(tenant, sid, time.Now())
	if sess == nil {
		return nil, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("server: unknown session %q for tenant %q", sid, tenant)}
	}
	return sess, 0, nil
}

func (s *Server) handleExecPrepared(ctx context.Context, w http.ResponseWriter, r *http.Request, tenant string) (int, any) {
	var req PreparedRequest
	if err := decode(r, &req); err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	sess, status, body := s.sessionOf(r, tenant)
	if sess == nil {
		return status, body
	}
	p := sess.lookup(req.ID)
	if p == nil {
		return http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("server: no prepared statement %q in session %s", req.ID, sess.id)}
	}
	w.Header().Set(HeaderSession, sess.id)
	ans, err := p.QueryCtx(ctx)
	if err != nil {
		return statusFor(err), ErrorResponse{Error: err.Error()}
	}
	return http.StatusOK, queryResponse(ans)
}

func (s *Server) handleClosePrepared(_ context.Context, w http.ResponseWriter, r *http.Request, tenant string) (int, any) {
	var req PreparedRequest
	if err := decode(r, &req); err != nil {
		return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
	}
	sess, status, body := s.sessionOf(r, tenant)
	if sess == nil {
		return status, body
	}
	if !sess.close(req.ID) {
		return http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("server: no prepared statement %q in session %s", req.ID, sess.id)}
	}
	w.Header().Set(HeaderSession, sess.id)
	return http.StatusOK, OKResponse{OK: true}
}

func (s *Server) handleSession(_ context.Context, _ http.ResponseWriter, r *http.Request, tenant string) (int, any) {
	sess, status, body := s.sessionOf(r, tenant)
	if sess == nil {
		return status, body
	}
	return http.StatusOK, SessionResponse{Session: sess.id, Tenant: tenant, Prepared: sess.ids()}
}

func (s *Server) handleHealth(_ context.Context, _ http.ResponseWriter, _ *http.Request, _ string) (int, any) {
	h, err := s.db.Health()
	if err != nil {
		return http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()}
	}
	return http.StatusOK, h
}

func (s *Server) handleHealthz(_ context.Context, _ http.ResponseWriter, _ *http.Request, _ string) (int, any) {
	resp := HealthzResponse{Status: "ok", Inflight: s.adm.current(), Sessions: s.sessions.len()}
	if s.adm.drainingNow() {
		resp.Status = "draining"
		return http.StatusServiceUnavailable, resp
	}
	return http.StatusOK, resp
}

// queryResponse renders an answer for the wire: the canonical string
// (byte-identical to an embedded evaluation), row count, and the
// degraded report when the federation answered best-effort.
func queryResponse(ans *idl.Result) QueryResponse {
	resp := QueryResponse{Answer: ans.String(), Rows: ans.Len()}
	if ans.Degraded != nil {
		resp.Degraded = ans.Degraded.String()
	}
	return resp
}

// statusFor maps an engine error to a wire status: deadline expiry is
// the server failing the request (504), a cancelled client is 503, an
// unreachable federated member is an upstream failure (502), everything
// else — parse errors, read-only violations, schema rejections — is the
// statement's fault (400).
func statusFor(err error) int {
	var srcErr *federation.SourceError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.As(err, &srcErr):
		return http.StatusBadGateway
	default:
		return http.StatusBadRequest
	}
}

// validTenant bounds tenant names: short, printable, no separators —
// they key sessions, admission accounting and metric names.
func validTenant(t string) bool {
	if len(t) == 0 || len(t) > 64 {
		return false
	}
	for _, c := range t {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// decode reads a JSON request body (bounded at maxBodyBytes).
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	// Reject unknown fields: a misspelled field name silently decoding
	// to a zero value turns a client typo into a confusing downstream
	// error (an empty statement "parses" before it fails).
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %v", err)
	}
	return nil
}

// writeJSON encodes one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
