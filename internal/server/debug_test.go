package server_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"idl"
	"idl/internal/server"
)

// TestDebugOffStates: the shared debug handler reports disabled
// subsystems as clean 503s (JSON error bodies), and distinguishes an
// unknown fingerprint on a live insights store (404) from the
// subsystem being off (503).
func TestDebugOffStates(t *testing.T) {
	db := idl.Open()
	ts := httptest.NewServer(server.DebugHandler(db))
	defer ts.Close()

	for _, path := range []string{"/debug/health", "/debug/slo", "/debug/traces", "/debug/statements", "/debug/statements/feedbeef"} {
		status, body, hdr := wireCall(t, ts.URL, "GET", path, nil, "")
		if status != http.StatusServiceUnavailable {
			t.Errorf("%s with subsystem off: %d (%s), want 503", path, status, body)
		}
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%s off-state content type: %q, want JSON", path, ct)
		}
		if !strings.Contains(body, "error") {
			t.Errorf("%s off-state body: %q, want an error field", path, body)
		}
	}

	// With insights live, an unknown fingerprint is the caller's fault.
	db.EnableInsights(idl.InsightsConfig{})
	status, _, _ := wireCall(t, ts.URL, "GET", "/debug/statements/feedbeef", nil, "")
	if status != http.StatusNotFound {
		t.Errorf("unknown fingerprint on live store: %d, want 404", status)
	}
	if status, _, _ := wireCall(t, ts.URL, "GET", "/debug/statements", nil, ""); status != http.StatusOK {
		t.Errorf("statements with insights on: %d, want 200", status)
	}
	// Metrics is self-enabling (scraping turns the registry on).
	if status, _, _ := wireCall(t, ts.URL, "GET", "/debug/metrics", nil, ""); status != http.StatusOK {
		t.Errorf("metrics: %d, want 200", status)
	}
	if status, _, _ := wireCall(t, ts.URL, "GET", "/debug/vars", nil, ""); status != http.StatusOK {
		t.Errorf("expvar: %d, want 200", status)
	}
}

// TestServerDebugMount: idld's serving mux carries the same /debug/
// endpoints behind Config.Debug — on when asked, absent when not.
func TestServerDebugMount(t *testing.T) {
	_, ts := newServer(t, demoDB(t), server.Config{Debug: true})
	if status, _, _ := wireCall(t, ts.URL, "GET", "/debug/metrics", nil, ""); status != http.StatusOK {
		t.Errorf("debug-enabled server: /debug/metrics %d, want 200", status)
	}
	if status, _, _ := wireCall(t, ts.URL, "GET", "/debug/statements", nil, ""); status == http.StatusNotFound {
		t.Error("debug-enabled server: /debug/statements not mounted")
	}

	_, plain := newServer(t, demoDB(t), server.Config{})
	if status, _, _ := wireCall(t, plain.URL, "GET", "/debug/metrics", nil, ""); status != http.StatusNotFound {
		t.Errorf("debug-disabled server: /debug/metrics %d, want 404", status)
	}
}
