package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"

	"idl"
)

// Shared /debug registration. Both HTTP fronts — cmd/idl's embedded
// -debug-addr server and idld's serving mux — mount the same
// observability endpoints through RegisterDebug, so the two servers
// cannot drift: a handler added here appears on both.

// publishOnce guards the process-global expvar name: expvar.Publish
// panics on duplicates, and tests may build several handlers.
var publishOnce sync.Once

// RegisterDebug mounts the observability endpoints for db on mux:
//
//	/debug/metrics  the metrics registry as JSON (?format=table for the
//	                \stats rendering)
//	/debug/events   the flight recorder as JSON (?format=text for the
//	                \flightrec rendering)
//	/debug/health   the rolling-window health report; 503 when metrics
//	                are off
//	/debug/slo      SLO statuses + overall health; 503 when metrics are
//	                off
//	/debug/traces   retained span trees; 503 when tracing is off
//	/debug/statements        statement digests, heaviest first (?by=
//	                         calls|p99|rows|time, ?k=n); 503 when
//	                         insights are off
//	/debug/statements/<fp>   one digest with its captured slow-query
//	                         exemplars; 404 on unknown fingerprints
//	/debug/mvcc     the engine's snapshot version chain: live versions,
//	                pinned epochs, retained bytes, GC counters
//	/debug/vars     expvar (includes idl.metrics and Go runtime stats)
//	/debug/pprof/   the standard pprof profiles
func RegisterDebug(mux *http.ServeMux, db *idl.DB) {
	publishOnce.Do(func() {
		expvar.Publish("idl.metrics", expvar.Func(func() any {
			return db.Metrics().Snapshot()
		}))
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "table" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, db.Metrics().Snapshot().Table())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		db.Metrics().WriteJSON(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			db.DumpEvents(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(db.Events())
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		h, err := db.Health()
		if err != nil {
			debugError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		h, err := db.Health()
		if err != nil {
			debugError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Healthy bool            `json:"healthy"`
			SLOs    []idl.SLOStatus `json:"slos"`
		}{Healthy: h.Healthy(), SLOs: h.SLOs})
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		// Probe first so a tracing-off error becomes a clean 503
		// instead of a half-written 200 body.
		if _, err := db.Traces(); err != nil {
			debugError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		db.ExportTraces(w)
	})
	mux.HandleFunc("/debug/statements", func(w http.ResponseWriter, r *http.Request) {
		k := 0
		if v := r.URL.Query().Get("k"); v != "" {
			fmt.Sscanf(v, "%d", &k)
		}
		by := r.URL.Query().Get("by")
		if by == "" {
			by = "time"
		}
		digests, err := db.TopStatements(k, by)
		if err != nil {
			debugError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Statements []idl.StatementDigest `json:"statements"`
			Dropped    uint64                `json:"dropped"`
		}{Statements: digests, Dropped: db.StatementsDropped()})
	})
	mux.HandleFunc("/debug/statements/", func(w http.ResponseWriter, r *http.Request) {
		fp := r.URL.Path[len("/debug/statements/"):]
		d, exemplars, err := db.Statement(fp)
		if err != nil {
			// Off-state is a 503 like the other endpoints; an unknown or
			// malformed fingerprint on a live store is a plain 404.
			if !db.InsightsEnabled() {
				debugError(w, err)
				return
			}
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Digest    idl.StatementDigest     `json:"digest"`
			Exemplars []idl.StatementExemplar `json:"exemplars"`
		}{Digest: d, Exemplars: exemplars})
	})
	mux.HandleFunc("/debug/mvcc", func(w http.ResponseWriter, r *http.Request) {
		// Native engine counters — served even when metrics are off.
		st := db.MVCCStats()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			LiveVersions  int      `json:"live_versions"`
			HeadEpoch     uint64   `json:"head_epoch"`
			HeadPublished bool     `json:"head_published"`
			PinnedReaders int64    `json:"pinned_readers"`
			PinnedEpochs  []uint64 `json:"pinned_epochs,omitempty"`
			RetainedBytes int64    `json:"retained_bytes"`
			Freezes       uint64   `json:"freezes"`
			Collected     uint64   `json:"collected"`
			COWClones     uint64   `json:"cow_clones"`
			MaxRevisions  int      `json:"max_revisions"`
		}{
			LiveVersions:  st.LiveVersions,
			HeadEpoch:     st.HeadEpoch,
			HeadPublished: st.HeadPublished,
			PinnedReaders: st.PinnedReaders,
			PinnedEpochs:  st.PinnedEpochs,
			RetainedBytes: st.RetainedBytes,
			Freezes:       st.Freezes,
			Collected:     st.Collected,
			COWClones:     st.COWClones,
			MaxRevisions:  st.MaxRevisions,
		})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugHandler serves the observability endpoints for one DB on a
// fresh mux — the embedded -debug-addr server's handler.
func DebugHandler(db *idl.DB) http.Handler {
	mux := http.NewServeMux()
	RegisterDebug(mux, db)
	return mux
}

// debugError reports a disabled-subsystem error as JSON with 503, so
// scrapers distinguish "off" from "broken".
func debugError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
