package server

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Open-loop load generation. Requests fire on a fixed schedule derived
// from the target QPS, regardless of whether earlier requests have
// completed — the generator never slows down to match the server, so a
// server falling behind accumulates visible latency and shed instead of
// silently throttling the load (the coordinated-omission trap of
// closed-loop harnesses). Each scheduled send runs in its own
// goroutine; the admission gate on the server side is what bounds
// concurrent work.

// LoadConfig tunes one open-loop run.
type LoadConfig struct {
	// QPS is the target send rate (required, > 0).
	QPS float64
	// Duration is how long to keep sending (required, > 0).
	Duration time.Duration
	// Statements cycle round-robin, one per scheduled send. Entries run
	// as queries unless listed in Execs.
	Statements []string
	// Execs marks statement indices that go to /v1/exec.
	Execs map[int]bool
	// Tenants cycle round-robin across sends; empty means the server's
	// default tenant.
	Tenants []string
	// TimeoutMs forwards as X-Timeout-Ms (0 = server default).
	TimeoutMs int
}

// LoadReport is the outcome of one open-loop run.
type LoadReport struct {
	Sent     int           // requests scheduled and sent
	OK       int           // 2xx
	Shed     int           // 429 (admission control)
	Errors   int           // everything else, transport errors included
	ByStatus map[int]int   // HTTP status → count (transport errors under 0)
	Wall     time.Duration // first send to last completion

	// Latency distribution over successful (2xx) requests.
	P50, P90, P99, P999, Max time.Duration
}

// AchievedQPS is the completed-successfully rate over the wall clock.
func (r *LoadReport) AchievedQPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OK) / r.Wall.Seconds()
}

// ErrorRate is Errors/Sent; ShedRate is Shed/Sent.
func (r *LoadReport) ErrorRate() float64 { return rate(r.Errors, r.Sent) }
func (r *LoadReport) ShedRate() float64  { return rate(r.Shed, r.Sent) }

func rate(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// RunLoad drives one open-loop run against base. It returns when every
// scheduled request has completed (each carries its own deadline, so
// completion is bounded). ctx cancels the schedule early.
func RunLoad(ctx context.Context, base string, cfg LoadConfig) (*LoadReport, error) {
	if cfg.QPS <= 0 || cfg.Duration <= 0 || len(cfg.Statements) == 0 {
		return nil, errors.New("server: load config needs QPS > 0, Duration > 0 and statements")
	}
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	// One transport for the whole run; per-send clients share it but
	// carry their own tenant/session state.
	transport := &http.Client{}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		byStatus  = map[int]int{}
		wg        sync.WaitGroup
	)
	record := func(status int, d time.Duration) {
		mu.Lock()
		byStatus[status]++
		if status/100 == 2 {
			latencies = append(latencies, d)
		}
		mu.Unlock()
	}
	start := time.Now()
	sent := 0
	for i := 0; ; i++ {
		next := start.Add(time.Duration(i) * interval)
		if next.Sub(start) >= cfg.Duration {
			break
		}
		// Absolute scheduling: sleeping until start+i*interval keeps the
		// send clock honest even when individual sends run long.
		if d := time.Until(next); d > 0 {
			select {
			case <-ctx.Done():
				i = int(cfg.Duration/interval) + 1
				continue
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			break
		}
		stmt := cfg.Statements[i%len(cfg.Statements)]
		isExec := cfg.Execs[i%len(cfg.Statements)]
		c := &Client{Base: base, Timeout: cfg.TimeoutMs, HTTP: transport}
		if len(cfg.Tenants) > 0 {
			c.Tenant = cfg.Tenants[i%len(cfg.Tenants)]
		}
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			var err error
			if isExec {
				_, err = c.Exec(context.Background(), stmt)
			} else {
				_, err = c.Query(context.Background(), stmt)
			}
			d := time.Since(t0)
			status := http.StatusOK
			if err != nil {
				var se *StatusError
				if errors.As(err, &se) {
					status = se.Code
				} else {
					status = 0 // transport failure
				}
			}
			record(status, d)
		}()
	}
	wg.Wait()
	rep := &LoadReport{Sent: sent, ByStatus: byStatus, Wall: time.Since(start)}
	for status, n := range byStatus {
		switch {
		case status/100 == 2:
			rep.OK += n
		case status == http.StatusTooManyRequests:
			rep.Shed += n
		default:
			rep.Errors += n
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		pick := func(q float64) time.Duration {
			return latencies[int(q*float64(len(latencies)-1))]
		}
		rep.P50, rep.P90, rep.P99, rep.P999 = pick(0.50), pick(0.90), pick(0.99), pick(0.999)
		rep.Max = latencies[len(latencies)-1]
	}
	return rep, nil
}
