package server_test

import (
	"context"
	"testing"
	"time"

	"idl/internal/server"
)

// TestRunLoad drives the open-loop generator against a live server and
// checks the schedule arithmetic and outcome classification.
func TestRunLoad(t *testing.T) {
	_, ts := newServer(t, demoDB(t), server.Config{MaxInflight: 32, TenantInflight: 32})

	rep, err := server.RunLoad(context.Background(), ts.URL, server.LoadConfig{
		QPS:      100,
		Duration: 500 * time.Millisecond,
		Statements: []string{
			"?.euter.r(.stkCode=S, .clsPrice>100)",
			"?.chwab.r(.S>100)",
		},
	})
	if err != nil {
		t.Fatalf("run load: %v", err)
	}
	// Open loop: the schedule, not the server, decides the send count.
	if want := 50; rep.Sent != want {
		t.Errorf("sent %d requests, want %d (open-loop schedule)", rep.Sent, want)
	}
	if rep.OK != rep.Sent || rep.Errors != 0 || rep.Shed != 0 {
		t.Errorf("outcomes: ok=%d shed=%d errors=%d of %d", rep.OK, rep.Shed, rep.Errors, rep.Sent)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Errorf("latency distribution inconsistent: p50=%s p99=%s max=%s", rep.P50, rep.P99, rep.Max)
	}
	if rep.AchievedQPS() <= 0 {
		t.Errorf("achieved qps: %f", rep.AchievedQPS())
	}

	// A statement pool with a broken statement shows up as errors, not
	// silence.
	rep, err = server.RunLoad(context.Background(), ts.URL, server.LoadConfig{
		QPS:        100,
		Duration:   100 * time.Millisecond,
		Statements: []string{"?.euter.r(.stkCode="},
	})
	if err != nil {
		t.Fatalf("run load: %v", err)
	}
	if rep.Errors != rep.Sent || rep.OK != 0 {
		t.Errorf("broken statements: ok=%d errors=%d of %d, want all errors", rep.OK, rep.Errors, rep.Sent)
	}
	if rep.ErrorRate() != 1 {
		t.Errorf("error rate: %f, want 1", rep.ErrorRate())
	}

	// Config validation.
	if _, err := server.RunLoad(context.Background(), ts.URL, server.LoadConfig{}); err == nil {
		t.Error("empty config should be rejected")
	}
}
