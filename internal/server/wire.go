package server

import "idl/internal/qlog"

// Wire protocol types. Every body is JSON; every response is either the
// endpoint's success type or ErrorResponse. Answers travel in their
// canonical string rendering (sorted rows, the same form the workload
// journal stores), so a wire answer byte-compares against an embedded
// evaluation of the same statement.

// Request headers.
const (
	// HeaderTenant namespaces sessions and admission accounting; absent
	// means Config.DefaultTenant.
	HeaderTenant = "X-Tenant"
	// HeaderSession addresses a server-side session. Prepare mints a
	// session when the header is absent and returns its ID in the
	// response header of the same name.
	HeaderSession = "X-Session-Id"
	// HeaderTrace propagates a caller-chosen trace ID into the engine's
	// correlation plane (flight recorder, journal, span trees, WAL
	// commit spans). Absent means the facade mints one per operation.
	HeaderTrace = "X-Trace-Id"
	// HeaderTimeout lowers the request deadline below the server
	// default, in milliseconds (values above Config.MaxTimeout clamp).
	HeaderTimeout = "X-Timeout-Ms"
)

// StatementRequest carries one IDL statement (query, exec, rule or
// clause depending on the endpoint).
type StatementRequest struct {
	Stmt string `json:"stmt"`
}

// PreparedRequest addresses one prepared statement in the session.
type PreparedRequest struct {
	ID string `json:"id"`
}

// QueryResponse is a query answer: the canonical rendering plus the row
// count, and the degraded report when the federation answered
// best-effort.
type QueryResponse struct {
	Answer   string `json:"answer"`
	Rows     int    `json:"rows"`
	Degraded string `json:"degraded,omitempty"`
}

// ExecResponse reports what an update request changed.
type ExecResponse struct {
	Exec qlog.ExecSummary `json:"exec"`
}

// OKResponse acknowledges an endpoint with no payload (rule, clause,
// close-prepared).
type OKResponse struct {
	OK bool `json:"ok"`
}

// PrepareResponse names a freshly prepared statement and the session
// holding it.
type PrepareResponse struct {
	ID      string `json:"id"`
	Text    string `json:"text"`
	Session string `json:"session"`
}

// SessionResponse describes one session: its prepared statement IDs,
// sorted.
type SessionResponse struct {
	Session  string   `json:"session"`
	Tenant   string   `json:"tenant"`
	Prepared []string `json:"prepared"`
}

// HealthzResponse is the liveness probe's body. Status is "ok" or
// "draining"; Inflight counts admitted requests currently executing,
// Sessions the live session-table population.
type HealthzResponse struct {
	Status   string `json:"status"`
	Inflight int    `json:"inflight"`
	Sessions int    `json:"sessions"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
