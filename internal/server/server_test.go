package server_test

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"idl"
	"idl/internal/qlog"
	"idl/internal/server"
	"idl/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestTranscriptGolden drives a scripted request sequence — the paper's
// running example over the wire, covering every endpoint plus the error
// paths — and compares the full request/response transcript with a
// golden file. Deterministic session IDs and canonical sorted answers
// make the transcript byte-stable.
func TestTranscriptGolden(t *testing.T) {
	_, ts := newServer(t, demoDB(t), server.Config{})

	type step struct {
		name    string
		method  string
		path    string
		headers map[string]string
		body    string
	}
	acme := map[string]string{server.HeaderTenant: "acme"}
	acmeS1 := map[string]string{server.HeaderTenant: "acme", server.HeaderSession: "s1"}
	steps := []step{
		{"healthz", "GET", "/healthz", nil, ""},
		{"query stocks over 100", "POST", "/v1/query", acme, stmtBody(t, "?.euter.r(.stkCode=S, .clsPrice>100)")},
		{"register unified view", "POST", "/v1/rule", acme, stmtBody(t, ".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)")},
		{"query the view", "POST", "/v1/query", acme, stmtBody(t, "?.dbI.p(.stk=S, .price>100)")},
		{"register update program", "POST", "/v1/clause", acme, stmtBody(t, ".dbU.ins(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S, .date=D, .clsPrice=P)")},
		{"call the program", "POST", "/v1/exec", acme, stmtBody(t, "?.dbU.ins(.stk=newco, .date=1/2/85, .price=42)")},
		{"see the inserted stock", "POST", "/v1/query", acme, stmtBody(t, "?.euter.r(.stkCode=newco, .clsPrice=P)")},
		{"prepare mints a session", "POST", "/v1/prepare", acme, stmtBody(t, "?.dbI.p(.stk=S, .price>100)")},
		{"exec prepared", "POST", "/v1/exec-prepared", acmeS1, `{"id":"p1"}`},
		{"session info", "GET", "/v1/session", acmeS1, ""},
		{"close prepared", "POST", "/v1/close-prepared", acmeS1, `{"id":"p1"}`},
		{"exec closed prepared is 404", "POST", "/v1/exec-prepared", acmeS1, `{"id":"p1"}`},
		{"parse error is 400", "POST", "/v1/query", acme, stmtBody(t, "?.euter.r(.stkCode=")},
		{"other tenant cannot see the session", "GET", "/v1/session", map[string]string{server.HeaderTenant: "rival", server.HeaderSession: "s1"}, ""},
		{"invalid tenant is 400", "POST", "/v1/query", map[string]string{server.HeaderTenant: "bad tenant!"}, stmtBody(t, "?.euter.r(.stkCode=S)")},
		{"prepared without session is 400", "POST", "/v1/exec-prepared", acme, `{"id":"p1"}`},
		{"bad body is 400", "POST", "/v1/query", acme, `{"stmt":`},
	}

	var b strings.Builder
	for i, st := range steps {
		status, body, hdr := wireCall(t, ts.URL, st.method, st.path, st.headers, st.body)
		fmt.Fprintf(&b, "### %02d %s — %s %s", i+1, st.name, st.method, st.path)
		if tnt := st.headers[server.HeaderTenant]; tnt != "" {
			fmt.Fprintf(&b, " tenant=%s", tnt)
		}
		if sid := st.headers[server.HeaderSession]; sid != "" {
			fmt.Fprintf(&b, " session=%s", sid)
		}
		b.WriteString("\n")
		if st.body != "" {
			fmt.Fprintf(&b, "> %s\n", st.body)
		}
		fmt.Fprintf(&b, "< %d", status)
		if sid := hdr.Get(server.HeaderSession); sid != "" {
			fmt.Fprintf(&b, " session=%s", sid)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%s\n\n", body)
	}

	const goldenPath = "testdata/transcript.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden): %v", err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("transcript diverged from golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSessionLifecycle walks one session through prepare → execute →
// re-prepare → close via the Client, checking the statement registry
// along the way.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newServer(t, demoDB(t), server.Config{})
	c := server.NewClient(ts.URL)
	ctx := context.Background()

	p1, err := c.Prepare(ctx, "?.euter.r(.stkCode=S, .clsPrice>100)")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if p1.ID != "p1" || p1.Session != "s1" || c.Session != "s1" {
		t.Fatalf("first prepare: got id=%s session=%s (client %s)", p1.ID, p1.Session, c.Session)
	}
	ans, err := c.ExecPrepared(ctx, "p1")
	if err != nil {
		t.Fatalf("exec prepared: %v", err)
	}
	want, err := c.Query(ctx, "?.euter.r(.stkCode=S, .clsPrice>100)")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if ans.Answer != want.Answer || ans.Rows != want.Rows {
		t.Errorf("prepared answer diverged from ad hoc: %q vs %q", ans.Answer, want.Answer)
	}

	p2, err := c.Prepare(ctx, "?.chwab.r(.S>100)")
	if err != nil {
		t.Fatalf("second prepare: %v", err)
	}
	if p2.ID != "p2" || p2.Session != "s1" {
		t.Fatalf("second prepare: got id=%s session=%s, want p2 in s1", p2.ID, p2.Session)
	}
	info, err := c.SessionInfo(ctx)
	if err != nil {
		t.Fatalf("session info: %v", err)
	}
	if len(info.Prepared) != 2 || info.Prepared[0] != "p1" || info.Prepared[1] != "p2" {
		t.Fatalf("session registry: %v", info.Prepared)
	}

	if err := c.ClosePrepared(ctx, "p1"); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := c.ExecPrepared(ctx, "p1"); err == nil {
		t.Fatal("executing a closed statement should fail")
	} else if se, ok := err.(*server.StatusError); !ok || se.Code != http.StatusNotFound {
		t.Fatalf("want 404 for closed statement, got %v", err)
	}
}

// TestSessionExpiry verifies the idle sweep drops sessions and their
// prepared statements.
func TestSessionExpiry(t *testing.T) {
	srv, ts := newServer(t, demoDB(t), server.Config{SessionIdle: 10 * time.Millisecond})
	c := server.NewClient(ts.URL)
	ctx := context.Background()

	if _, err := c.Prepare(ctx, "?.euter.r(.stkCode=S)"); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions: %d, want 1", srv.Sessions())
	}
	if n := srv.SweepSessions(time.Now().Add(time.Second)); n != 1 {
		t.Fatalf("sweep dropped %d, want 1", n)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions after sweep: %d, want 0", srv.Sessions())
	}
	if _, err := c.ExecPrepared(ctx, "p1"); err == nil {
		t.Fatal("expired session should not serve prepared statements")
	} else if se, ok := err.(*server.StatusError); !ok || se.Code != http.StatusNotFound {
		t.Fatalf("want 404 for expired session, got %v", err)
	}
}

// TestTenantIsolation: a session belongs to the tenant that minted it;
// other tenants cannot address it even knowing its ID, and sessions of
// different tenants do not collide.
func TestTenantIsolation(t *testing.T) {
	_, ts := newServer(t, demoDB(t), server.Config{})
	ctx := context.Background()

	a := server.NewClient(ts.URL)
	a.Tenant = "acme"
	if _, err := a.Prepare(ctx, "?.euter.r(.stkCode=S)"); err != nil {
		t.Fatalf("prepare: %v", err)
	}

	// The rival presents acme's session ID.
	b := server.NewClient(ts.URL)
	b.Tenant = "rival"
	b.Session = a.Session
	if _, err := b.SessionInfo(ctx); err == nil {
		t.Fatal("rival tenant resolved acme's session")
	} else if se, ok := err.(*server.StatusError); !ok || se.Code != http.StatusNotFound {
		t.Fatalf("want 404 across tenants, got %v", err)
	}
	if _, err := b.ExecPrepared(ctx, "p1"); err == nil {
		t.Fatal("rival tenant executed acme's prepared statement")
	}

	// The rival's own sessions work normally.
	b.Session = ""
	if _, err := b.Prepare(ctx, "?.chwab.r(.S>100)"); err != nil {
		t.Fatalf("rival prepare: %v", err)
	}
	if b.Session == a.Session {
		t.Fatalf("tenants share a session ID: %s", b.Session)
	}
}

// TestSaturationShed saturates admission with gate-blocked requests and
// checks excess load sheds with 429 + Retry-After instead of queueing,
// and that the blocked requests complete once the gate opens.
func TestSaturationShed(t *testing.T) {
	db := demoDB(t)
	gate := newGate()
	defer gate.open()
	if err := db.Mount("gate", gate); err != nil {
		t.Fatalf("mount: %v", err)
	}
	srv, ts := newServer(t, db, server.Config{MaxInflight: 3, TenantInflight: 3, RequestTimeout: 30 * time.Second})

	var wg sync.WaitGroup
	results := make(chan int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, _ := wireCall(t, ts.URL, "POST", "/v1/query", nil, stmtBody(t, "?.euter.r(.stkCode=S)"))
			results <- status
		}()
	}
	waitInflight(t, srv, 3)

	// Saturated: a burst of further requests all sheds, deterministically.
	for i := 0; i < 5; i++ {
		status, body, hdr := wireCall(t, ts.URL, "POST", "/v1/query", nil, stmtBody(t, "?.euter.r(.stkCode=S)"))
		if status != http.StatusTooManyRequests {
			t.Fatalf("saturated request %d: status %d (%s), want 429", i, status, body)
		}
		if hdr.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	}
	// Probes bypass admission so a saturated server stays observable.
	status, body, _ := wireCall(t, ts.URL, "GET", "/healthz", nil, "")
	if status != http.StatusOK || !strings.Contains(body, `"inflight":3`) {
		t.Fatalf("healthz under saturation: %d %s", status, body)
	}

	gate.open()
	wg.Wait()
	close(results)
	for status := range results {
		if status != http.StatusOK {
			t.Errorf("blocked request finished with %d, want 200", status)
		}
	}
	if got := srv.DB().Metrics().Counter("server.shed").Value(); got != 5 {
		t.Errorf("server.shed = %d, want 5", got)
	}
}

// TestTenantFairness: one tenant at its per-tenant bound sheds while
// the server still has capacity for other tenants.
func TestTenantFairness(t *testing.T) {
	db := demoDB(t)
	gate := newGate()
	defer gate.open()
	if err := db.Mount("gate", gate); err != nil {
		t.Fatalf("mount: %v", err)
	}
	srv, ts := newServer(t, db, server.Config{MaxInflight: 8, TenantInflight: 1, RequestTimeout: 30 * time.Second})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wireCall(t, ts.URL, "POST", "/v1/query", map[string]string{server.HeaderTenant: "greedy"}, stmtBody(t, "?.euter.r(.stkCode=S)"))
	}()
	waitInflight(t, srv, 1)

	// greedy is at its bound: its next request sheds...
	status, body, _ := wireCall(t, ts.URL, "POST", "/v1/query", map[string]string{server.HeaderTenant: "greedy"}, stmtBody(t, "?.euter.r(.stkCode=S)"))
	if status != http.StatusTooManyRequests || !strings.Contains(body, "greedy") {
		t.Fatalf("greedy overload: %d %s, want tenant-shed 429", status, body)
	}
	// ...while another tenant is still admitted (it blocks on the gate,
	// proving it got past admission, then completes).
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _, _ := wireCall(t, ts.URL, "POST", "/v1/query", map[string]string{server.HeaderTenant: "modest"}, stmtBody(t, "?.euter.r(.stkCode=S)"))
		if status != http.StatusOK {
			t.Errorf("modest tenant: status %d, want 200", status)
		}
	}()
	waitInflight(t, srv, 2)

	gate.open()
	wg.Wait()
	if got := srv.DB().Metrics().Counter("server.tenant.greedy.shed").Value(); got != 1 {
		t.Errorf("greedy shed counter = %d, want 1", got)
	}
}

// TestGracefulDrain: with requests blocked inflight, drain closes the
// gate (new requests 503 + Connection: close), lets the inflight ones
// finish with 200, and checkpoints the WAL.
func TestGracefulDrain(t *testing.T) {
	wcfg := workload.Default()
	wcfg.Demo = true
	dir := t.TempDir()
	db, _, err := idl.OpenWAL(dir, idl.WALOptions{
		Bootstrap: func(db *idl.DB) error { return workload.Apply(db, wcfg) },
	})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	defer db.Close()
	// A mutation before the gate mounts gives the checkpoint something to
	// capture (exec syncs fail-fast, so it must precede the blocked gate).
	if _, err := db.Exec("?.euter.r+(.date=3/9/85, .stkCode=drainco, .clsPrice=7)"); err != nil {
		t.Fatalf("exec: %v", err)
	}
	gate := newGate()
	defer gate.open()
	if err := db.Mount("gate", gate); err != nil {
		t.Fatalf("mount: %v", err)
	}
	srv, ts := newServer(t, db, server.Config{MaxInflight: 4, TenantInflight: 4, RequestTimeout: 30 * time.Second})

	var wg sync.WaitGroup
	statuses := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, _ := wireCall(t, ts.URL, "POST", "/v1/query", nil, stmtBody(t, "?.euter.r(.stkCode=S)"))
			statuses <- status
		}()
	}
	waitInflight(t, srv, 2)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	// The admission gate closes before inflight work finishes.
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	status, _, hdr := wireCall(t, ts.URL, "POST", "/v1/query", nil, stmtBody(t, "?.euter.r(.stkCode=S)"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d, want 503", status)
	}
	if hdr.Get("Connection") != "close" {
		t.Error("drain refusal without Connection: close")
	}
	if status, _, _ := wireCall(t, ts.URL, "GET", "/healthz", nil, ""); status != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", status)
	}

	gate.open()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK {
			t.Errorf("inflight request finished with %d during drain, want 200", status)
		}
	}
	st, ok := db.WALStatus()
	if !ok {
		t.Fatal("wal status unavailable")
	}
	if st.Checkpoints < 1 {
		t.Errorf("drain did not checkpoint: %+v", st)
	}
}

// TestDeadline504: a request whose deadline expires mid-evaluation maps
// to 504, and X-Timeout-Ms lowers the deadline per request.
func TestDeadline504(t *testing.T) {
	db := demoDB(t)
	gate := newGate() // never opened: evaluation blocks until the deadline
	if err := db.Mount("gate", gate); err != nil {
		t.Fatalf("mount: %v", err)
	}
	_, ts := newServer(t, db, server.Config{RequestTimeout: 30 * time.Second})

	start := time.Now()
	status, body, _ := wireCall(t, ts.URL, "POST", "/v1/query",
		map[string]string{server.HeaderTimeout: "50"}, stmtBody(t, "?.euter.r(.stkCode=S)"))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline expiry: %d (%s), want 504", status, body)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("50ms deadline took %s: X-Timeout-Ms not honored", d)
	}
}

// TestTraceAdoption: a caller-supplied X-Trace-Id is echoed in the
// response and adopted by the engine's flight recorder instead of a
// facade-minted ID.
func TestTraceAdoption(t *testing.T) {
	db := demoDB(t)
	db.SetFlightRecorderSize(qlog.DefaultRingSize)
	_, ts := newServer(t, db, server.Config{})

	const tid = "trace-e2e-42"
	status, _, hdr := wireCall(t, ts.URL, "POST", "/v1/query",
		map[string]string{server.HeaderTrace: tid}, stmtBody(t, "?.euter.r(.stkCode=S)"))
	if status != http.StatusOK {
		t.Fatalf("query: %d", status)
	}
	if got := hdr.Get(server.HeaderTrace); got != tid {
		t.Errorf("trace header echo: %q, want %q", got, tid)
	}
	found := false
	for _, ev := range db.Events() {
		if ev.TraceID == tid {
			found = true
		}
	}
	if !found {
		t.Error("engine events never carried the adopted trace ID")
	}
}
