package catalog

import (
	"testing"

	"idl/internal/object"
)

func TestCreateAndDropDatabase(t *testing.T) {
	changes := 0
	c := New(nil, func() { changes++ })
	if err := c.CreateDatabase("euter"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("euter"); err == nil {
		t.Error("duplicate create should fail")
	}
	if err := c.CreateDatabase(""); err == nil {
		t.Error("empty name should fail")
	}
	if got := c.Databases(); len(got) != 1 || got[0] != "euter" {
		t.Errorf("databases = %v", got)
	}
	if err := c.DropDatabase("euter"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropDatabase("euter"); err == nil {
		t.Error("double drop should fail")
	}
	if changes != 2 {
		t.Errorf("onChange fired %d times, want 2", changes)
	}
}

func TestCreateAndDropRelation(t *testing.T) {
	c := New(nil, nil)
	if err := c.CreateRelation("nodb", "r"); err == nil {
		t.Error("relation in missing database should fail")
	}
	if err := c.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateRelation("d", "r"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateRelation("d", "r"); err == nil {
		t.Error("duplicate relation should fail")
	}
	if err := c.CreateRelation("d", ""); err == nil {
		t.Error("empty relation name should fail")
	}
	rels, err := c.Relations("d")
	if err != nil || len(rels) != 1 || rels[0] != "r" {
		t.Errorf("relations = %v, %v", rels, err)
	}
	if err := c.DropRelation("d", "r"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropRelation("d", "r"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestRelationOnDemand(t *testing.T) {
	c := New(nil, nil)
	if _, err := c.Relation("d", "r", false); err == nil {
		t.Error("missing relation without create should fail")
	}
	s, err := c.Relation("d", "r", true)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(object.TupleOf("x", 1))
	again, err := c.Relation("d", "r", false)
	if err != nil || again.Len() != 1 {
		t.Errorf("relation not shared: %v %v", again, err)
	}
}

func TestInsertAndStats(t *testing.T) {
	c := New(nil, nil)
	n, err := c.Insert("euter", "r",
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50),
		object.TupleOf("date", object.NewDate(85, 3, 2), "stkCode", "hp", "clsPrice", 55),
		object.TupleOf("date", object.NewDate(85, 3, 1), "stkCode", "hp", "clsPrice", 50), // dup
	)
	if err != nil || n != 2 {
		t.Fatalf("inserted %d, err %v", n, err)
	}
	card, err := c.Cardinality("euter", "r")
	if err != nil || card != 2 {
		t.Errorf("cardinality = %d, %v", card, err)
	}
	attrs, err := c.Attributes("euter", "r")
	if err != nil || len(attrs) != 3 || attrs[0] != "clsPrice" {
		t.Errorf("attributes = %v, %v", attrs, err)
	}
	stats := c.Stats()
	if len(stats) != 1 || stats[0].Tuples != 2 || stats[0].Database != "euter" {
		t.Errorf("stats = %+v", stats)
	}
}

func TestHeterogeneousAttributeUnion(t *testing.T) {
	c := New(nil, nil)
	_, err := c.Insert("d", "r",
		object.TupleOf("a", 1),
		object.TupleOf("b", 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := c.Attributes("d", "r")
	if err != nil || len(attrs) != 2 {
		t.Errorf("attributes = %v, %v", attrs, err)
	}
}

func TestNonRelationErrors(t *testing.T) {
	u := object.NewTuple()
	u.Put("weird", object.Int(5)) // database slot holding an atom
	d := object.NewTuple()
	d.Put("alsoWeird", object.Int(7)) // relation slot holding an atom
	u.Put("d", d)
	c := New(u, nil)
	if _, err := c.Relations("weird"); err == nil {
		t.Error("non-tuple database should error")
	}
	if _, err := c.Relation("d", "alsoWeird", false); err == nil {
		t.Error("non-set relation should error")
	}
}
