package catalog

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"idl/internal/federation"
	"idl/internal/object"
	"idl/internal/obs"
	"idl/internal/qlog"
)

// Federation support: a catalog can mount member databases that live
// behind a federation.Source instead of in local memory. Mounted members
// are synced into the universe as snapshots before queries run; the
// resilience stack (timeouts, retries, circuit breakers) lives in the
// Source implementation, composed by the caller.

// Mount attaches a federated member database under name (the source's
// own name when name is empty). The member's contents appear in the
// universe only after the first SyncSources. It fails if a local
// database or another source already uses the name.
func (c *Catalog) Mount(name string, src federation.Source) error {
	if src == nil {
		return fmt.Errorf("catalog: cannot mount a nil source")
	}
	if name == "" {
		name = src.Name()
	}
	if name == "" {
		return fmt.Errorf("catalog: source database name must not be empty")
	}
	if c.universe.Has(name) {
		return fmt.Errorf("catalog: database %q already exists", name)
	}
	if _, dup := c.sources[name]; dup {
		return fmt.Errorf("catalog: source %q is already mounted", name)
	}
	if c.sources == nil {
		c.sources = map[string]federation.Source{}
	}
	c.sources[name] = src
	c.membersG.Set(int64(len(c.sources)))
	return nil
}

// Unmount detaches a federated member and removes its snapshot from the
// universe.
func (c *Catalog) Unmount(name string) error {
	if _, ok := c.sources[name]; !ok {
		return fmt.Errorf("catalog: no source %q is mounted", name)
	}
	delete(c.sources, name)
	c.membersG.Set(int64(len(c.sources)))
	removed := false
	c.applyUniverse(func(u *object.Tuple) bool {
		removed = u.Delete(name)
		return removed
	})
	if removed {
		return c.logSnapshot(name, nil)
	}
	return nil
}

// Sources lists the mounted member database names, sorted.
func (c *Catalog) Sources() []string {
	names := make([]string, 0, len(c.sources))
	for n := range c.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HasSources reports whether any member database is mounted.
func (c *Catalog) HasSources() bool { return len(c.sources) > 0 }

// SetApplier installs the hook through which source snapshots reach the
// universe. Wire it to Engine.UpdateBase so installs are coherent with
// concurrent queries; without one, mutations apply directly and fire
// onChange.
func (c *Catalog) SetApplier(fn func(func(base *object.Tuple) bool)) {
	c.apply = fn
}

// SetSnapshotLogger installs the durability hook for member snapshots:
// fn runs after each snapshot install (snap non-nil) or removal (snap
// nil) reaches the universe. Logging the full snapshot makes recovery
// independent of the member being reachable — the replayed snapshot is
// plain data until the next live sync.
func (c *Catalog) SetSnapshotLogger(fn func(name string, snap *object.Tuple) error) {
	c.logSnap = fn
}

func (c *Catalog) logSnapshot(name string, snap *object.Tuple) error {
	if c.logSnap == nil {
		return nil
	}
	return c.logSnap(name, snap)
}

// SetMetrics publishes sync health into a registry:
// federation.sync.{count,failures,latency} for the sync pass itself and
// federation.{members,unavailable} gauges for the current mount state.
// A nil registry disables publication.
func (c *Catalog) SetMetrics(r *obs.Registry) {
	c.metrics = r
	if r == nil {
		c.syncCount, c.syncFailures, c.syncLatency = nil, nil, nil
		c.membersG, c.unavailableG = nil, nil
		return
	}
	c.syncCount = r.Counter("federation.sync.count")
	c.syncFailures = r.Counter("federation.sync.failures")
	c.syncLatency = r.Histogram("federation.sync.latency")
	c.membersG = r.Gauge("federation.members")
	c.unavailableG = r.Gauge("federation.unavailable")
	c.membersG.Set(int64(len(c.sources)))
}

// SetTracer wires a live reader of the owner's span tracer (usually
// Engine.Tracer, so enabling/disabling tracing on the DB takes effect
// here without further plumbing). When tracing is on, every member fetch
// emits a "federation.fetch" root span carrying the member name, the
// caller's trace/op IDs, and the fetch outcome.
func (c *Catalog) SetTracer(fn func() *obs.Tracer) {
	c.tracer = fn
}

func (c *Catalog) applyUniverse(fn func(*object.Tuple) bool) {
	if c.apply != nil {
		c.apply(fn)
		return
	}
	if fn(c.universe) {
		c.changed()
	}
}

// SetFetchConcurrency caps how many member fetches SyncSources may run
// concurrently. 0 and 1 (the default) fetch members one at a time in
// sorted-name order; higher values overlap the fetches — member latency
// then costs the slowest member rather than the sum — while error
// selection, health reports and snapshot installation stay in sorted
// order, so results are independent of fetch completion order. Values
// below zero clamp to zero.
func (c *Catalog) SetFetchConcurrency(n int) {
	if n < 0 {
		n = 0
	}
	c.fetchConc = n
}

// FetchConcurrency returns the configured fetch concurrency cap.
func (c *Catalog) FetchConcurrency() int { return c.fetchConc }

// fetchResult is one member's sync outcome, recorded by the fetch phase
// and interpreted by SyncSources' sequential post-pass.
type fetchResult struct {
	snap     *object.Tuple
	err      error
	breaker  string
	attempts int
}

// fetchAll fetches the named members, concurrently when the configured
// concurrency and the member count both exceed one. Results are indexed
// by the caller's name order; breaker state is probed right after each
// member's own fetch completes. In sequential fail-fast mode the fetch
// loop stops at the first error — exactly the pre-concurrency behavior —
// and the truncated slice ends with the failing member. Concurrent
// fail-fast still fetches every member (the goroutines are already in
// flight); the post-pass picks the first failure in name order.
func (c *Catalog) fetchAll(ctx context.Context, names []string, failFast bool) []fetchResult {
	results := make([]fetchResult, len(names))
	fetch := func(i int) {
		src := c.sources[names[i]]
		r := &results[i]
		var span *obs.Span
		if c.tracer != nil {
			if t := c.tracer(); t != nil {
				span = t.Start("federation.fetch")
				span.SetStr("member", names[i])
				if tid := qlog.TraceID(ctx); tid != "" {
					span.SetStr("trace", tid)
				}
				if qid := qlog.OpID(ctx); qid != 0 {
					span.SetInt("qid", int64(qid))
				}
			}
		}
		r.snap, r.err = federation.Fetch(ctx, src)
		r.breaker, r.attempts = federation.Probe(src)
		if span != nil {
			span.SetStr("breaker", r.breaker).SetInt("attempts", int64(r.attempts))
			if r.err != nil {
				span.SetStr("err", r.err.Error())
			}
			span.End()
		}
	}
	conc := c.fetchConc
	if conc > len(names) {
		conc = len(names)
	}
	if conc < 2 {
		for i := range names {
			fetch(i)
			if failFast && results[i].err != nil {
				return results[:i+1]
			}
		}
		return results
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fetch(i)
		}(i)
	}
	wg.Wait()
	return results
}

// SyncSources refreshes every mounted member's snapshot: fetches happen
// outside any engine lock (concurrently when SetFetchConcurrency allows),
// then all universe changes install in one applier call. In fail-fast
// mode (bestEffort=false) the first unreachable member — first in sorted
// name order, whatever order the fetches completed in — aborts the sync
// with its *federation.SourceError. In best-effort mode an unreachable
// member's snapshot is removed — the member evaluates as empty — and the
// returned report records every member's health. An unchanged snapshot is
// not reinstalled, so view caches stay warm across healthy syncs.
func (c *Catalog) SyncSources(ctx context.Context, bestEffort bool) (*federation.Report, error) {
	names := c.Sources()
	report := &federation.Report{}
	if len(names) == 0 {
		return report, nil
	}
	var start time.Time
	if c.syncCount != nil {
		start = time.Now()
		c.syncCount.Inc()
		defer func() { c.syncLatency.Observe(time.Since(start)) }()
	}
	results := c.fetchAll(ctx, names, !bestEffort)
	snaps := make(map[string]*object.Tuple, len(names))
	for i, name := range names {
		if i >= len(results) {
			break
		}
		res := results[i]
		health := federation.SourceHealth{Name: name, Breaker: res.breaker, Attempts: res.attempts}
		if res.err != nil {
			if c.metrics != nil {
				c.metrics.Counter("federation.member." + name + ".fetch_errors").Inc()
			}
			if !bestEffort {
				c.syncFailures.Inc()
				return nil, res.err
			}
			if serr, ok := res.err.(*federation.SourceError); ok {
				health.Err = fmt.Sprintf("%s: %v", serr.Op, serr.Err)
			} else {
				health.Err = res.err.Error()
			}
		} else {
			snaps[name] = res.snap
		}
		report.Sources = append(report.Sources, health)
	}
	c.unavailableG.Set(int64(len(report.Unavailable())))
	// installed records what actually changed, in sorted-name order, for
	// the durability hook: unchanged snapshots are neither reinstalled
	// nor re-logged.
	type install struct {
		name string
		snap *object.Tuple // nil = removed
	}
	var installed []install
	c.applyUniverse(func(u *object.Tuple) bool {
		changed := false
		for _, name := range names {
			snap, ok := snaps[name]
			if !ok {
				// Unreachable member: drop the stale snapshot so the
				// best-effort answer is exactly the full answer restricted
				// to live members.
				if u.Delete(name) {
					changed = true
					installed = append(installed, install{name, nil})
				}
				continue
			}
			if old, ok := u.Get(name); ok && old.Equal(snap) {
				continue
			}
			u.Put(name, snap)
			changed = true
			installed = append(installed, install{name, snap})
		}
		return changed
	})
	for _, in := range installed {
		if err := c.logSnapshot(in.name, in.snap); err != nil {
			return nil, err
		}
	}
	return report, nil
}
