// Package catalog manages the shape of a universe of databases: creating
// and dropping databases and relations, bulk-loading tuples, and
// introspecting metadata (the names that IDL's higher-order variables
// range over).
//
// The catalog operates on the same object.Tuple universe the core engine
// evaluates against; it is the API-level DDL counterpart to the
// language-level metadata updates of paper §5 (which can also create and
// destroy relations and attributes).
package catalog

import (
	"fmt"
	"sort"

	"idl/internal/federation"
	"idl/internal/object"
	"idl/internal/obs"
)

// Catalog wraps a universe tuple with DDL and introspection operations.
// It does not serialize access; the owner (usually an idl.DB) does.
type Catalog struct {
	universe *object.Tuple
	onChange func()        // invoked after every mutation (engine invalidation)
	epoch    func() uint64 // reads the owner's catalog epoch counter

	// Federated members (see sources.go): name -> source, plus the hook
	// through which snapshot installs reach the universe coherently with
	// a concurrently evaluating engine.
	sources map[string]federation.Source
	apply   func(func(base *object.Tuple) bool)

	// mutable is the engine's copy-on-write barrier (SetWriteBarrier):
	// called inside an applyUniverse functor before mutating an existing
	// relation set in place, so bulk loads never touch a set shared with
	// a live MVCC snapshot. Nil means mutate in place.
	mutable func(parent *object.Tuple, attr string, s *object.Set) *object.Set

	// fetchConc caps how many member fetches SyncSources runs
	// concurrently; 0 and 1 fetch sequentially (see SetFetchConcurrency).
	fetchConc int

	// Durability hooks (see SetMutationLogger / SetSnapshotLogger): the
	// owner's write-ahead log observes committed DDL and member-snapshot
	// installs. Both are nil-safe and cost nothing unconfigured.
	logMut  func(op, db, rel string, tuples []*object.Tuple) error
	logSnap func(name string, snap *object.Tuple) error

	// Sync metrics (see SetMetrics); all nil-safe, so an unconfigured
	// catalog pays nothing.
	syncCount    *obs.Counter
	syncFailures *obs.Counter
	syncLatency  *obs.Histogram
	membersG     *obs.Gauge
	unavailableG *obs.Gauge
	metrics      *obs.Registry

	// tracer reads the owner's current span tracer (see SetTracer); when
	// it returns non-nil, member fetches emit federation.fetch root spans
	// annotated with the caller's trace/op IDs.
	tracer func() *obs.Tracer
}

// New wraps a universe tuple. onChange (optional) runs after each
// mutation — wire it to the engine's Invalidate.
func New(universe *object.Tuple, onChange func()) *Catalog {
	if universe == nil {
		universe = object.NewTuple()
	}
	return &Catalog{universe: universe, onChange: onChange}
}

// Universe returns the underlying universe tuple.
func (c *Catalog) Universe() *object.Tuple { return c.universe }

// SetEpochSource wires the catalog-epoch reader (the engine's epoch
// counter, bumped on every universe mutation). Epoch versions the
// statistics and plan caches: plans and statistics compiled at one epoch
// are revalidated when it moves.
func (c *Catalog) SetEpochSource(fn func() uint64) { c.epoch = fn }

// Epoch returns the current catalog epoch (0 when no source is wired).
// The epoch advances on every mutation of the universe — DDL, DML,
// member-snapshot installs — and is the version key of the engine's
// plan cache.
func (c *Catalog) Epoch() uint64 {
	if c.epoch == nil {
		return 0
	}
	return c.epoch()
}

func (c *Catalog) changed() {
	if c.onChange != nil {
		c.onChange()
	}
}

// SetMutationLogger installs the durability hook for DDL: fn runs after
// each committed catalog mutation with the operation name ("create-db",
// "drop-db", "create-rel", "drop-rel", "insert"), its target, and the
// inserted tuples. A non-nil return propagates to the DDL caller — the
// in-memory change is applied but the log refused it, so the owner's
// write-ahead log is poisoned and the caller must treat the store as
// failed.
func (c *Catalog) SetMutationLogger(fn func(op, db, rel string, tuples []*object.Tuple) error) {
	c.logMut = fn
}

func (c *Catalog) logMutation(op, db, rel string, tuples []*object.Tuple) error {
	if c.logMut == nil {
		return nil
	}
	return c.logMut(op, db, rel, tuples)
}

// SetWriteBarrier installs the engine's copy-on-write hook for in-place
// set mutation (Engine.MutableSet). It is consulted only inside
// applyUniverse functors, which run under the engine mutex.
func (c *Catalog) SetWriteBarrier(fn func(parent *object.Tuple, attr string, s *object.Set) *object.Set) {
	c.mutable = fn
}

func (c *Catalog) mutableSet(parent *object.Tuple, attr string, s *object.Set) *object.Set {
	if c.mutable == nil {
		return s
	}
	return c.mutable(parent, attr, s)
}

// CreateDatabase adds an empty database. It fails if the name is taken.
func (c *Catalog) CreateDatabase(name string) error {
	if name == "" {
		return fmt.Errorf("catalog: database name must not be empty")
	}
	var err error
	c.applyUniverse(func(u *object.Tuple) bool {
		if u.Has(name) {
			err = fmt.Errorf("catalog: database %q already exists", name)
			return false
		}
		u.Put(name, object.NewTuple())
		return true
	})
	if err != nil {
		return err
	}
	return c.logMutation("create-db", name, "", nil)
}

// DropDatabase removes a database and all its relations.
func (c *Catalog) DropDatabase(name string) error {
	var err error
	c.applyUniverse(func(u *object.Tuple) bool {
		if !u.Delete(name) {
			err = fmt.Errorf("catalog: no database %q", name)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return c.logMutation("drop-db", name, "", nil)
}

// database returns the tuple for a database.
func (c *Catalog) database(name string) (*object.Tuple, error) {
	v, ok := c.universe.Get(name)
	if !ok {
		return nil, fmt.Errorf("catalog: no database %q", name)
	}
	t, ok := v.(*object.Tuple)
	if !ok {
		return nil, fmt.Errorf("catalog: database %q is not a tuple of relations", name)
	}
	return t, nil
}

// CreateRelation adds an empty relation to a database.
func (c *Catalog) CreateRelation(db, rel string) error {
	var err error
	c.applyUniverse(func(u *object.Tuple) bool {
		d, dErr := databaseIn(u, db)
		if dErr != nil {
			err = dErr
			return false
		}
		if rel == "" {
			err = fmt.Errorf("catalog: relation name must not be empty")
			return false
		}
		if d.Has(rel) {
			err = fmt.Errorf("catalog: relation %q already exists in %q", rel, db)
			return false
		}
		d.Put(rel, object.NewSet())
		return true
	})
	if err != nil {
		return err
	}
	return c.logMutation("create-rel", db, rel, nil)
}

// DropRelation removes a relation.
func (c *Catalog) DropRelation(db, rel string) error {
	var err error
	c.applyUniverse(func(u *object.Tuple) bool {
		d, dErr := databaseIn(u, db)
		if dErr != nil {
			err = dErr
			return false
		}
		if !d.Delete(rel) {
			err = fmt.Errorf("catalog: no relation %q in %q", rel, db)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return c.logMutation("drop-rel", db, rel, nil)
}

// databaseIn resolves a database tuple inside an applyUniverse functor.
func databaseIn(u *object.Tuple, name string) (*object.Tuple, error) {
	v, ok := u.Get(name)
	if !ok {
		return nil, fmt.Errorf("catalog: no database %q", name)
	}
	t, ok := v.(*object.Tuple)
	if !ok {
		return nil, fmt.Errorf("catalog: database %q is not a tuple of relations", name)
	}
	return t, nil
}

// relationIn resolves (creating on demand) db.rel inside an applyUniverse
// functor, reporting what it created so the caller can log the DDL.
func relationIn(u *object.Tuple, db, rel string) (s *object.Set, madeDB, madeRel bool, err error) {
	if db == "" {
		return nil, false, false, fmt.Errorf("catalog: database name must not be empty")
	}
	dv, ok := u.Get(db)
	if !ok {
		dt := object.NewTuple()
		u.Put(db, dt)
		dv = dt
		madeDB = true
	}
	d, ok := dv.(*object.Tuple)
	if !ok {
		return nil, madeDB, false, fmt.Errorf("catalog: database %q is not a tuple of relations", db)
	}
	v, ok := d.Get(rel)
	if !ok {
		if rel == "" {
			return nil, madeDB, false, fmt.Errorf("catalog: relation name must not be empty")
		}
		ns := object.NewSet()
		d.Put(rel, ns)
		return ns, madeDB, true, nil
	}
	s, ok = v.(*object.Set)
	if !ok {
		return nil, madeDB, false, fmt.Errorf("catalog: %s.%s is not a relation", db, rel)
	}
	return s, madeDB, false, nil
}

// Relation returns a relation's set, creating the relation (and database)
// on demand when create is true. Creation routes through the applier so
// it is coherent with a concurrently evaluating engine.
func (c *Catalog) Relation(db, rel string, create bool) (*object.Set, error) {
	if !create {
		d, err := c.database(db)
		if err != nil {
			return nil, err
		}
		v, ok := d.Get(rel)
		if !ok {
			return nil, fmt.Errorf("catalog: no relation %q in %q", rel, db)
		}
		s, ok := v.(*object.Set)
		if !ok {
			return nil, fmt.Errorf("catalog: %s.%s is not a relation", db, rel)
		}
		return s, nil
	}
	var (
		s               *object.Set
		madeDB, madeRel bool
		err             error
	)
	c.applyUniverse(func(u *object.Tuple) bool {
		s, madeDB, madeRel, err = relationIn(u, db, rel)
		return madeDB || madeRel
	})
	if madeDB {
		if lerr := c.logMutation("create-db", db, "", nil); lerr != nil {
			return s, lerr
		}
	}
	if err != nil {
		return nil, err
	}
	if madeRel {
		return s, c.logMutation("create-rel", db, rel, nil)
	}
	return s, nil
}

// Insert bulk-loads tuples into a relation (created on demand), skipping
// duplicates, and returns how many were added. The whole batch lands in
// one applier call, behind the copy-on-write barrier when the target set
// is shared with a live MVCC snapshot.
func (c *Catalog) Insert(db, rel string, tuples ...*object.Tuple) (int, error) {
	var (
		n               int
		madeDB, madeRel bool
		err             error
	)
	c.applyUniverse(func(u *object.Tuple) bool {
		var s *object.Set
		s, madeDB, madeRel, err = relationIn(u, db, rel)
		if err != nil {
			return madeDB
		}
		if !madeRel {
			if d, dErr := databaseIn(u, db); dErr == nil {
				s = c.mutableSet(d, rel, s)
			}
		}
		for _, t := range tuples {
			if s.Add(t) {
				n++
			}
		}
		return madeDB || madeRel || n > 0
	})
	if madeDB {
		if lerr := c.logMutation("create-db", db, "", nil); lerr != nil {
			return n, lerr
		}
	}
	if err != nil {
		return 0, err
	}
	if madeRel {
		if lerr := c.logMutation("create-rel", db, rel, nil); lerr != nil {
			return n, lerr
		}
	}
	if n > 0 {
		// Replay re-inserts the whole batch; Add skips the duplicates the
		// original run skipped, so the outcome is identical.
		return n, c.logMutation("insert", db, rel, tuples)
	}
	return n, nil
}

// Databases lists database names, sorted.
func (c *Catalog) Databases() []string {
	names := append([]string(nil), c.universe.Attrs()...)
	sort.Strings(names)
	return names
}

// Relations lists a database's relation names, sorted.
func (c *Catalog) Relations(db string) ([]string, error) {
	d, err := c.database(db)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), d.Attrs()...)
	sort.Strings(names)
	return names, nil
}

// Attributes lists the union of attribute names across a relation's
// tuples, sorted. Heterogeneous relations report every name that occurs.
func (c *Catalog) Attributes(db, rel string) ([]string, error) {
	s, err := c.Relation(db, rel, false)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	s.Each(func(e object.Object) bool {
		if t, ok := e.(*object.Tuple); ok {
			for _, a := range t.Attrs() {
				seen[a] = true
			}
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Cardinality returns a relation's tuple count.
func (c *Catalog) Cardinality(db, rel string) (int, error) {
	s, err := c.Relation(db, rel, false)
	if err != nil {
		return 0, err
	}
	return s.Len(), nil
}

// Stat describes one relation for catalog listings.
type Stat struct {
	Database   string
	Relation   string
	Tuples     int
	Attributes []string
}

// Stats describes every relation in the universe, ordered by database
// then relation name.
func (c *Catalog) Stats() []Stat {
	var out []Stat
	for _, db := range c.Databases() {
		rels, err := c.Relations(db)
		if err != nil {
			continue
		}
		for _, rel := range rels {
			attrs, _ := c.Attributes(db, rel)
			n, _ := c.Cardinality(db, rel)
			out = append(out, Stat{Database: db, Relation: rel, Tuples: n, Attributes: attrs})
		}
	}
	return out
}
