package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects hierarchical spans. A nil *Tracer is the disabled
// tracer: Start returns a nil *Span, every Span method no-ops, and no
// clock is read — instrumentation sites pay one pointer test.
//
// Finished root spans land in a bounded ring (newest kept), so a REPL or
// debug endpoint can show the last few operation trees without unbounded
// memory growth.
type Tracer struct {
	mu       sync.Mutex
	capacity int
	recent   []*Span // finished roots, oldest first

	// dropped counts finished roots evicted by the capacity bound, so a
	// long session can tell "quiet" from "overwritten". An optional
	// registry counter mirrors it (SetDropCounter) for scrape surfaces.
	dropped     atomic.Uint64
	dropCounter *Counter
}

// NewTracer returns an enabled tracer keeping the last capacity finished
// root spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a root span. End() files it into the ring.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, Name: name, start: time.Now()}
}

// Recent returns the finished root spans, oldest first.
func (t *Tracer) Recent() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.recent...)
}

// Clear drops the recorded spans.
func (t *Tracer) Clear() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recent = nil
}

func (t *Tracer) file(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.recent) >= t.capacity {
		drop := len(t.recent) - t.capacity + 1
		copy(t.recent, t.recent[drop:])
		t.recent = t.recent[:t.capacity]
		t.recent[t.capacity-1] = s
		t.countDropped(uint64(drop))
		return
	}
	t.recent = append(t.recent, s)
}

// countDropped tallies evictions; callers hold t.mu.
func (t *Tracer) countDropped(n uint64) {
	t.dropped.Add(n)
	if t.dropCounter != nil {
		t.dropCounter.Add(n)
	}
}

// Dropped returns how many finished root spans the retention bound has
// evicted since the tracer was created.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// SetDropCounter mirrors future evictions into a registry counter
// (typically "traces.dropped"); nil detaches.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropCounter = c
}

// Capacity returns the retention bound (0 for a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.capacity
}

// SetCapacity rebounds the ring at runtime (minimum 1). Shrinking
// evicts the oldest spans immediately and counts them as dropped.
func (t *Tracer) SetCapacity(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.capacity = n
	if over := len(t.recent) - n; over > 0 {
		copy(t.recent, t.recent[over:])
		t.recent = t.recent[:n]
		t.countDropped(uint64(over))
	}
}

// Attr is one span annotation: a string or integer value under a key.
type Attr struct {
	Key   string `json:"key"`
	Str   string `json:"str,omitempty"`
	Int   int64  `json:"int,omitempty"`
	IsStr bool   `json:"-"`
}

func (a Attr) String() string {
	if a.IsStr {
		return a.Key + "=" + a.Str
	}
	return fmt.Sprintf("%s=%d", a.Key, a.Int)
}

// Span is one timed node in an operation tree. Spans are built
// single-threaded (the engine serializes operations); only the tracer's
// ring is locked.
type Span struct {
	tracer *Tracer
	parent *Span
	start  time.Time

	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Children []*Span       `json:"children,omitempty"`
}

// Child opens a sub-span; call End on it before ending the parent.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{parent: s, Name: name, start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// AddChild attaches an already-measured child (used when the measurement
// was accumulated out-of-band, e.g. per-conjunct probes).
func (s *Span) AddChild(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{parent: s, Name: name, Duration: d}
	s.Children = append(s.Children, c)
	return c
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
	return s
}

// SetStr annotates the span with a string attribute.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v, IsStr: true})
	return s
}

// End stamps the duration; a root span additionally files itself into
// the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.Duration == 0 && !s.start.IsZero() {
		s.Duration = time.Since(s.start)
	}
	if s.parent == nil && s.tracer != nil {
		s.tracer.file(s)
	}
}

// Depth returns how many ancestors the span has.
func (s *Span) Depth() int {
	d := 0
	for p := s.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// String renders the span tree, indented two spaces per level.
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0)
	return strings.TrimRight(b.String(), "\n")
}

func (s *Span) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %s", s.Name, s.Duration)
	for _, a := range s.Attrs {
		b.WriteString(" ")
		b.WriteString(a.String())
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.render(b, depth+1)
	}
}
