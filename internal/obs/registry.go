// Package obs is the engine's observability layer: a stdlib-only metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms) and
// a hierarchical span tracer (trace.go).
//
// Everything is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, *Tracer or *Span are no-ops, so instrumented code reads
// unconditionally —
//
//	reg.Counter("engine.query.count").Inc()
//
// — and costs a single pointer test when observability is disabled. Hot
// loops should still hoist the metric lookup (or accumulate locally and
// publish once per operation) since get-or-create takes a lock.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (breaker state, mounted members,
// cache sizes).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// HistBuckets is the number of fixed exponential histogram buckets.
// Bucket 0 holds observations ≤ 1µs; each following bucket doubles the
// upper bound, so the last covers everything past ~4.6 hours — wide
// enough for any latency this engine can produce.
const HistBuckets = 34

// Histogram is a fixed-bucket latency histogram with exponential bucket
// bounds (1µs, 2µs, 4µs, …). Observations are durations; counts and the
// running sum are atomic, so concurrent Observe calls need no lock.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	// Exact extrema, complementing the bucket-bound quantiles. minPlus1
	// stores min+1 so the zero value means "no observations yet" while a
	// genuine 0ns observation stays representable.
	minPlus1 atomic.Int64
	max      atomic.Int64
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d ≤ 1µs·2^i, clamped to the last bucket.
func bucketIndex(d time.Duration) int {
	ns := int64(d)
	if ns <= 1000 {
		return 0
	}
	i := bits.Len64(uint64((ns - 1) / 1000))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketUpper returns bucket i's inclusive upper bound.
func BucketUpper(i int) time.Duration {
	return time.Duration(1000 << uint(i))
}

// Observe records one duration (negative observations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	ns := int64(d)
	h.sum.Add(ns)
	for {
		cur := h.minPlus1.Load()
		if cur != 0 && cur <= ns+1 {
			break
		}
		if h.minPlus1.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	mp1 := h.minPlus1.Load()
	if mp1 == 0 {
		return 0
	}
	return time.Duration(mp1 - 1)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 ≤ q ≤ 1) — an overestimate by at most one doubling.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Buckets returns a copy of the raw bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.minPlus1.Store(0)
	h.max.Store(0)
}

// Registry is a named collection of metrics. Lookup is get-or-create and
// safe for concurrent use; the returned metric pointers are stable, so
// hot paths can look a metric up once and keep the pointer.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. nil
// registry returns nil (a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Reset zeroes every registered metric (the metrics stay registered, so
// held pointers remain valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// CounterValue reads a counter without creating it (0 when absent).
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name].Value()
}

// GaugeValue reads a gauge without creating it (0 when absent).
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gauges[name].Value()
}

// ---------------------------------------------------------------------------
// Snapshots

// CounterVal is one counter in a snapshot.
type CounterVal struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeVal is one gauge in a snapshot.
type GaugeVal struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistVal summarizes one histogram in a snapshot. Durations are
// nanoseconds; P50/P99 are bucket upper bounds while Min/Max are the
// exact extrema observed.
type HistVal struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	SumNS  int64  `json:"sum_ns"`
	MeanNS int64  `json:"mean_ns"`
	MinNS  int64  `json:"min_ns"`
	P50NS  int64  `json:"p50_ns"`
	P99NS  int64  `json:"p99_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name — the unit the debug endpoint serializes and the CLI renders.
type Snapshot struct {
	Counters   []CounterVal `json:"counters"`
	Gauges     []GaugeVal   `json:"gauges"`
	Histograms []HistVal    `json:"histograms"`
}

// Snapshot captures the registry. Values are read atomically per metric;
// the snapshot as a whole is not a consistent cut (fine for monitoring).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterVal{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeVal{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistVal{
			Name:   name,
			Count:  h.Count(),
			SumNS:  int64(h.Sum()),
			MeanNS: int64(h.Mean()),
			MinNS:  int64(h.Min()),
			P50NS:  int64(h.Quantile(0.5)),
			P99NS:  int64(h.Quantile(0.99)),
			MaxNS:  int64(h.Max()),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON serializes a snapshot of the registry to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Table renders the snapshot as an aligned two-column table (histograms
// get a summary column), sorted by name — the CLI's `\stats` view.
func (s Snapshot) Table() string {
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > width {
			width = len(g.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-*s  %d\n", width, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%-*s  %d\n", width, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%-*s  n=%d mean=%s min=%s p50≤%s p99≤%s max=%s\n",
			width, h.Name, h.Count,
			time.Duration(h.MeanNS), time.Duration(h.MinNS),
			time.Duration(h.P50NS), time.Duration(h.P99NS), time.Duration(h.MaxNS))
	}
	return b.String()
}
