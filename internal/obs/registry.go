// Package obs is the engine's observability layer: a stdlib-only metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms) and
// a hierarchical span tracer (trace.go).
//
// Everything is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, *Tracer or *Span are no-ops, so instrumented code reads
// unconditionally —
//
//	reg.Counter("engine.query.count").Inc()
//
// — and costs a single pointer test when observability is disabled. Hot
// loops should still hoist the metric lookup (or accumulate locally and
// publish once per operation) since get-or-create takes a lock.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (breaker state, mounted members,
// cache sizes).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// HistBuckets is the number of fixed exponential histogram buckets.
// Bucket 0 holds observations ≤ 1µs; each following bucket doubles the
// upper bound, so the last covers everything past ~4.6 hours — wide
// enough for any latency this engine can produce.
const HistBuckets = 34

// Histogram is a fixed-bucket latency histogram with exponential bucket
// bounds (1µs, 2µs, 4µs, …). Observations are durations; counts and the
// running sum are atomic, so concurrent Observe calls need no lock.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	// Exact extrema, complementing the bucket-bound quantiles. minPlus1
	// stores min+1 so the zero value means "no observations yet" while a
	// genuine 0ns observation stays representable.
	minPlus1 atomic.Int64
	max      atomic.Int64
	// unit is "" for durations (the default) or "count" for dimensionless
	// distributions (e.g. group-commit batch sizes). Set once at creation,
	// before the pointer is shared; it only changes how snapshots render.
	unit string
}

// ObserveN records one dimensionless observation (a batch size, a row
// count) into a count-unit histogram.
func (h *Histogram) ObserveN(n int64) {
	h.Observe(time.Duration(n))
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d ≤ 1µs·2^i, clamped to the last bucket.
func bucketIndex(d time.Duration) int {
	ns := int64(d)
	if ns <= 1000 {
		return 0
	}
	i := bits.Len64(uint64((ns - 1) / 1000))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketUpper returns bucket i's inclusive upper bound.
func BucketUpper(i int) time.Duration {
	return time.Duration(1000 << uint(i))
}

// Observe records one duration (negative observations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	ns := int64(d)
	h.sum.Add(ns)
	for {
		cur := h.minPlus1.Load()
		if cur != 0 && cur <= ns+1 {
			break
		}
		if h.minPlus1.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	mp1 := h.minPlus1.Load()
	if mp1 == 0 {
		return 0
	}
	return time.Duration(mp1 - 1)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1), linearly interpolated
// within the winning bucket and clamped to the observed Min/Max — so a
// histogram holding one 3µs observation reports p99 = 3µs, not the 4µs
// bucket bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [HistBuckets]uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
	}
	return quantileOf(&counts, h.Count(), h.Min(), h.Max(), q)
}

// quantileOf computes an interpolated quantile over fixed exponential
// bucket counts. Bucket i covers (BucketUpper(i-1), BucketUpper(i)]
// (bucket 0 starts at 0); the rank's position within its bucket
// interpolates linearly between the bounds, and the result clamps to
// the exact observed extrema. Shared by Histogram and WindowSnapshot.
func quantileOf(counts *[HistBuckets]uint64, n uint64, min, max time.Duration, q float64) time.Duration {
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank == 0 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		c := counts[i]
		if c == 0 || cum+c < rank {
			cum += c
			continue
		}
		lower := time.Duration(0)
		if i > 0 {
			lower = BucketUpper(i - 1)
		}
		upper := BucketUpper(i)
		frac := float64(rank-cum) / float64(c)
		v := lower + time.Duration(frac*float64(upper-lower))
		if v < min {
			v = min
		}
		if v > max {
			v = max
		}
		return v
	}
	return max
}

// Buckets returns a copy of the raw bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.minPlus1.Store(0)
	h.max.Store(0)
}

// Registry is a named collection of metrics. Lookup is get-or-create and
// safe for concurrent use; the returned metric pointers are stable, so
// hot paths can look a metric up once and keep the pointer.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	windows  map[string]*WindowedHistogram
	slos     map[string]*SLOTracker
	// windowed gates every window and SLO tracker created through this
	// registry (shared pointer, so SetWindowed flips them all at once).
	// Default on; the telemetry-overhead benches turn it off to isolate
	// the windowed layer's cost.
	windowed *atomic.Bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	on := &atomic.Bool{}
	on.Store(true)
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		windows:  map[string]*WindowedHistogram{},
		slos:     map[string]*SLOTracker{},
		windowed: on,
	}
}

// Counter returns the named counter, creating it on first use. nil
// registry returns nil (a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// CountHistogram returns the named dimensionless histogram (batch
// sizes, row counts), creating it on first use. Snapshots render its
// values as plain integers instead of durations.
func (r *Registry) CountHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{unit: "count"}
	r.hists[name] = h
	return h
}

// Window returns the named rolling-window histogram (DefaultWindow /
// DefaultWindowSlices), creating it on first use. Created windows share
// the registry's windowed flag.
func (r *Registry) Window(name string) *WindowedHistogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	w, ok := r.windows[name]
	r.mu.RUnlock()
	if ok {
		return w
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok = r.windows[name]; ok {
		return w
	}
	w = NewWindow(DefaultWindow, DefaultWindowSlices)
	w.enabled = r.windowed
	r.windows[name] = w
	return w
}

// WindowValue snapshots the named window without creating it.
func (r *Registry) WindowValue(name string) (WindowSnapshot, bool) {
	if r == nil {
		return WindowSnapshot{}, false
	}
	r.mu.RLock()
	w, ok := r.windows[name]
	r.mu.RUnlock()
	if !ok {
		return WindowSnapshot{}, false
	}
	return w.Snapshot(), true
}

// SLO returns the named SLO tracker, creating it on first use with the
// given target latency and availability objective (zero values take the
// Default* constants). The first creator's parameters win; adjust later
// with SetTarget/SetObjective.
func (r *Registry) SLO(name string, target time.Duration, objective float64) *SLOTracker {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t, ok := r.slos[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.slos[name]; ok {
		return t
	}
	t = NewSLO(name, target, objective, DefaultWindow, DefaultWindowSlices)
	t.enabled = r.windowed
	r.slos[name] = t
	return t
}

// SLOStatuses reports every registered SLO tracker, sorted by name.
func (r *Registry) SLOStatuses() []SLOStatus {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]SLOStatus, 0, len(r.slos))
	for _, t := range r.slos {
		out = append(out, t.Status())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetWindowed enables or disables every windowed histogram and SLO
// tracker created through this registry (existing and future). Counters,
// gauges and cumulative histograms are unaffected.
func (r *Registry) SetWindowed(on bool) {
	if r != nil {
		r.windowed.Store(on)
	}
}

// Windowed reports whether windowed instruments are observing.
func (r *Registry) Windowed() bool {
	return r != nil && r.windowed.Load()
}

// Reset zeroes every registered metric (the metrics stay registered, so
// held pointers remain valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, w := range r.windows {
		for i := range w.slices {
			s := &w.slices[i]
			s.mu.Lock()
			s.h.reset()
			s.slot.Store(-1)
			s.mu.Unlock()
		}
	}
	for _, t := range r.slos {
		for _, wc := range []*windowedCounter{t.total, t.bad} {
			for i := range wc.slices {
				s := &wc.slices[i]
				s.mu.Lock()
				s.n.Store(0)
				s.slot.Store(-1)
				s.mu.Unlock()
			}
		}
	}
}

// CounterValue reads a counter without creating it (0 when absent).
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name].Value()
}

// GaugeValue reads a gauge without creating it (0 when absent).
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gauges[name].Value()
}

// ---------------------------------------------------------------------------
// Snapshots

// CounterVal is one counter in a snapshot.
type CounterVal struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeVal is one gauge in a snapshot.
type GaugeVal struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistVal summarizes one histogram in a snapshot. Durations are
// nanoseconds; quantiles are interpolated within their bucket and
// clamped to the exact extrema observed. Unit "count" marks a
// dimensionless histogram whose values are plain integers.
type HistVal struct {
	Name   string `json:"name"`
	Unit   string `json:"unit,omitempty"`
	Count  uint64 `json:"count"`
	SumNS  int64  `json:"sum_ns"`
	MeanNS int64  `json:"mean_ns"`
	MinNS  int64  `json:"min_ns"`
	P50NS  int64  `json:"p50_ns"`
	P99NS  int64  `json:"p99_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// WindowVal summarizes one rolling-window histogram in a snapshot.
type WindowVal struct {
	Name       string  `json:"name"`
	WindowNS   int64   `json:"window_ns"`
	Count      uint64  `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	MeanNS     int64   `json:"mean_ns"`
	P50NS      int64   `json:"p50_ns"`
	P99NS      int64   `json:"p99_ns"`
	P999NS     int64   `json:"p999_ns"`
	MaxNS      int64   `json:"max_ns"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name — the unit the debug endpoint serializes and the CLI renders.
type Snapshot struct {
	Counters   []CounterVal `json:"counters"`
	Gauges     []GaugeVal   `json:"gauges"`
	Histograms []HistVal    `json:"histograms"`
	Windows    []WindowVal  `json:"windows,omitempty"`
	SLOs       []SLOStatus  `json:"slos,omitempty"`
}

// Snapshot captures the registry. Values are read atomically per metric;
// the snapshot as a whole is not a consistent cut (fine for monitoring).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterVal{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeVal{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistVal{
			Name:   name,
			Unit:   h.unit,
			Count:  h.Count(),
			SumNS:  int64(h.Sum()),
			MeanNS: int64(h.Mean()),
			MinNS:  int64(h.Min()),
			P50NS:  int64(h.Quantile(0.5)),
			P99NS:  int64(h.Quantile(0.99)),
			MaxNS:  int64(h.Max()),
		})
	}
	for name, w := range r.windows {
		ws := w.Snapshot()
		s.Windows = append(s.Windows, WindowVal{
			Name:       name,
			WindowNS:   int64(ws.Window),
			Count:      ws.Count,
			RatePerSec: ws.Rate(),
			MeanNS:     int64(ws.Mean()),
			P50NS:      int64(ws.Quantile(0.5)),
			P99NS:      int64(ws.Quantile(0.99)),
			P999NS:     int64(ws.Quantile(0.999)),
			MaxNS:      int64(ws.Max),
		})
	}
	for _, t := range r.slos {
		s.SLOs = append(s.SLOs, t.Status())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Windows, func(i, j int) bool { return s.Windows[i].Name < s.Windows[j].Name })
	sort.Slice(s.SLOs, func(i, j int) bool { return s.SLOs[i].Name < s.SLOs[j].Name })
	return s
}

// WriteJSON serializes a snapshot of the registry to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Table renders the snapshot as an aligned two-column table (histograms
// get a summary column), sorted by name — the CLI's `\stats` view.
func (s Snapshot) Table() string {
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > width {
			width = len(g.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	for _, w := range s.Windows {
		if len(w.Name) > width {
			width = len(w.Name)
		}
	}
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-*s  %d\n", width, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%-*s  %d\n", width, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		if h.Unit == "count" {
			fmt.Fprintf(&b, "%-*s  n=%d mean=%d min=%d p50=%d p99=%d max=%d\n",
				width, h.Name, h.Count, h.MeanNS, h.MinNS, h.P50NS, h.P99NS, h.MaxNS)
			continue
		}
		fmt.Fprintf(&b, "%-*s  n=%d mean=%s min=%s p50=%s p99=%s max=%s\n",
			width, h.Name, h.Count,
			time.Duration(h.MeanNS), time.Duration(h.MinNS),
			time.Duration(h.P50NS), time.Duration(h.P99NS), time.Duration(h.MaxNS))
	}
	for _, w := range s.Windows {
		fmt.Fprintf(&b, "%-*s  win=%s n=%d rate=%.3g/s mean=%s p50=%s p99=%s p999=%s\n",
			width, w.Name, time.Duration(w.WindowNS), w.Count, w.RatePerSec,
			time.Duration(w.MeanNS), time.Duration(w.P50NS),
			time.Duration(w.P99NS), time.Duration(w.P999NS))
	}
	for _, t := range s.SLOs {
		fmt.Fprintf(&b, "%s\n", t.String())
	}
	return b.String()
}
