package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable clock for deterministic window tests.
type fakeClock struct {
	ns atomic.Int64
}

func (c *fakeClock) now() time.Time      { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) set(d time.Duration) { c.ns.Store(int64(d)) }

func newTestWindow(window time.Duration, slices int) (*WindowedHistogram, *fakeClock) {
	clk := &fakeClock{}
	clk.set(10 * window) // start well past the epoch so slot 0 is stale
	w := NewWindow(window, slices)
	w.now = clk.now
	return w, clk
}

func TestWindowedHistogramRolls(t *testing.T) {
	w, clk := newTestWindow(12*time.Second, 12) // 1s slices
	if w.Window() != 12*time.Second {
		t.Fatalf("Window = %v, want 12s", w.Window())
	}

	// 10 observations in the current slice.
	for i := 0; i < 10; i++ {
		w.Observe(time.Millisecond)
	}
	s := w.Snapshot()
	if s.Count != 10 || s.Min != time.Millisecond || s.Max != time.Millisecond {
		t.Fatalf("snapshot = count %d min %v max %v, want 10/1ms/1ms", s.Count, s.Min, s.Max)
	}

	// Five slices later, add slower observations: both batches visible.
	clk.set(120*time.Second + 5*time.Second)
	for i := 0; i < 5; i++ {
		w.Observe(50 * time.Millisecond)
	}
	s = w.Snapshot()
	if s.Count != 15 {
		t.Fatalf("mid-window count = %d, want 15", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 50*time.Millisecond {
		t.Fatalf("mid-window min/max = %v/%v", s.Min, s.Max)
	}
	if got := s.Quantile(0.999); got != 50*time.Millisecond {
		t.Fatalf("p999 = %v, want 50ms (clamped to max)", got)
	}

	// Advance until the first batch ages out: only the slow batch remains.
	clk.set(120*time.Second + 13*time.Second)
	s = w.Snapshot()
	if s.Count != 5 || s.Min != 50*time.Millisecond {
		t.Fatalf("aged snapshot = count %d min %v, want 5/50ms", s.Count, s.Min)
	}

	// Advance a full window: everything aged out.
	clk.set(120*time.Second + 30*time.Second)
	s = w.Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty window: count=%d p99=%v mean=%v", s.Count, s.Quantile(0.99), s.Mean())
	}
}

func TestWindowedHistogramSliceReuse(t *testing.T) {
	w, clk := newTestWindow(4*time.Second, 4) // 1s slices
	base := 40 * time.Second
	clk.set(base)
	w.Observe(time.Millisecond)
	// Wrap the ring: same slice index, new slot → old data must be gone.
	clk.set(base + 4*time.Second)
	w.Observe(2 * time.Millisecond)
	s := w.Snapshot()
	if s.Count != 1 || s.Min != 2*time.Millisecond {
		t.Fatalf("after wrap: count=%d min=%v, want 1/2ms", s.Count, s.Min)
	}
}

func TestWindowedHistogramRate(t *testing.T) {
	w, clk := newTestWindow(10*time.Second, 10)
	clk.set(100 * time.Second)
	for i := 0; i < 30; i++ {
		w.Observe(time.Microsecond)
	}
	if got := w.Snapshot().Rate(); got != 3 {
		t.Fatalf("Rate = %v, want 3/s", got)
	}
}

func TestWindowedHistogramDisabled(t *testing.T) {
	w, clk := newTestWindow(10*time.Second, 10)
	clk.set(100 * time.Second)
	w.enabled.Store(false)
	w.Observe(time.Millisecond)
	if s := w.Snapshot(); s.Count != 0 {
		t.Fatalf("disabled window recorded %d observations", s.Count)
	}
	w.enabled.Store(true)
	w.Observe(time.Millisecond)
	if s := w.Snapshot(); s.Count != 1 {
		t.Fatalf("re-enabled window count = %d, want 1", s.Count)
	}
}

func TestWindowedHistogramNil(t *testing.T) {
	var w *WindowedHistogram
	w.Observe(time.Second) // must not panic
	if w.Window() != 0 {
		t.Fatal("nil Window() != 0")
	}
	if s := w.Snapshot(); s.Count != 0 {
		t.Fatal("nil snapshot not empty")
	}
}

func TestNewWindowClamps(t *testing.T) {
	w := NewWindow(0, 0)
	if w.Window() < time.Second {
		t.Fatalf("clamped window = %v, want >= 1s", w.Window())
	}
	if len(w.slices) != 2 {
		t.Fatalf("clamped slices = %d, want 2", len(w.slices))
	}
	if w2 := NewWindow(time.Hour, 10000); len(w2.slices) != 128 {
		t.Fatalf("upper clamp slices = %d, want 128", len(w2.slices))
	}
}

func newTestSLO(target time.Duration, objective float64, window time.Duration, slices int) (*SLOTracker, *fakeClock) {
	clk := &fakeClock{}
	clk.set(10 * window)
	tr := NewSLO("test", target, objective, window, slices)
	tr.now = clk.now
	return tr, clk
}

func TestSLOTrackerBurnRate(t *testing.T) {
	// Objective 0.99 → 1% error budget.
	tr, _ := newTestSLO(10*time.Millisecond, 0.99, 60*time.Second, 12)

	// Empty window: healthy, zero burn.
	st := tr.Status()
	if !st.Healthy || st.BurnRate != 0 || st.Total != 0 {
		t.Fatalf("empty status = %+v", st)
	}

	// 99 fast + 1 slow = exactly on budget (burn 1.0, still healthy).
	for i := 0; i < 99; i++ {
		tr.Observe(time.Millisecond, false)
	}
	tr.Observe(time.Second, false)
	st = tr.Status()
	if st.Total != 100 || st.Bad != 1 {
		t.Fatalf("counts = %d/%d, want 1/100", st.Bad, st.Total)
	}
	if st.BurnRate < 0.999 || st.BurnRate > 1.001 || !st.Healthy {
		t.Fatalf("on-budget burn = %v healthy=%v, want 1.0/true", st.BurnRate, st.Healthy)
	}

	// Errors count as bad even when fast; budget now blown.
	tr.Observe(time.Millisecond, true)
	st = tr.Status()
	if st.Bad != 2 || st.Healthy {
		t.Fatalf("after error: bad=%d healthy=%v, want 2/false", st.Bad, st.Healthy)
	}
}

func TestSLOTrackerWindowAges(t *testing.T) {
	tr, clk := newTestSLO(10*time.Millisecond, 0.999, 10*time.Second, 10)
	clk.set(200 * time.Second)
	tr.Observe(time.Second, false) // bad
	if st := tr.Status(); st.Healthy {
		t.Fatalf("burning status reported healthy: %+v", st)
	}
	clk.set(220 * time.Second) // two windows later
	st := tr.Status()
	if st.Total != 0 || !st.Healthy {
		t.Fatalf("aged status = %+v, want empty/healthy", st)
	}
}

func TestSLOTrackerSetters(t *testing.T) {
	tr, _ := newTestSLO(10*time.Millisecond, 0.99, 10*time.Second, 10)
	tr.SetTarget(100 * time.Millisecond)
	tr.Observe(50*time.Millisecond, false) // fast under the new target
	if st := tr.Status(); st.Bad != 0 {
		t.Fatalf("after SetTarget: bad=%d, want 0", st.Bad)
	}
	tr.SetObjective(0.5)
	tr.Observe(time.Second, false) // 1 bad of 2: fraction 0.5 = budget 0.5 → burn 1
	st := tr.Status()
	if st.BurnRate < 0.999 || st.BurnRate > 1.001 {
		t.Fatalf("after SetObjective: burn=%v, want 1.0", st.BurnRate)
	}
	// Invalid values are ignored.
	tr.SetTarget(-1)
	tr.SetObjective(2)
	st = tr.Status()
	if st.Target != 100*time.Millisecond || st.Objective != 0.5 {
		t.Fatalf("invalid setters applied: %+v", st)
	}
}

func TestSLOTrackerNil(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(time.Second, true)
	tr.SetTarget(time.Second)
	tr.SetObjective(0.5)
	if st := tr.Status(); !st.Healthy {
		t.Fatal("nil tracker unhealthy")
	}
	if tr.Name() != "" {
		t.Fatal("nil Name() != empty")
	}
}

func TestRegistryWindowsAndSLOs(t *testing.T) {
	r := NewRegistry()
	w := r.Window("op.latency")
	if r.Window("op.latency") != w {
		t.Fatal("Window not get-or-create")
	}
	tr := r.SLO("op", 50*time.Millisecond, 0.99)
	if r.SLO("op", time.Second, 0.5) != tr {
		t.Fatal("SLO not get-or-create")
	}
	if got := tr.Status().Target; got != 50*time.Millisecond {
		t.Fatalf("second SLO() call overwrote target: %v", got)
	}

	w.Observe(time.Millisecond)
	tr.Observe(time.Millisecond, false)
	if ws, ok := r.WindowValue("op.latency"); !ok || ws.Count != 1 {
		t.Fatalf("WindowValue = %+v ok=%v", ws, ok)
	}
	if _, ok := r.WindowValue("nope"); ok {
		t.Fatal("WindowValue invented a window")
	}
	if sts := r.SLOStatuses(); len(sts) != 1 || sts[0].Name != "op" || sts[0].Total != 1 {
		t.Fatalf("SLOStatuses = %+v", sts)
	}

	// SetWindowed(false) gates both windows and SLO trackers.
	r.SetWindowed(false)
	if r.Windowed() {
		t.Fatal("Windowed() true after SetWindowed(false)")
	}
	w.Observe(time.Millisecond)
	tr.Observe(time.Millisecond, false)
	if ws, _ := r.WindowValue("op.latency"); ws.Count != 1 {
		t.Fatalf("gated window still counted: %d", ws.Count)
	}
	if sts := r.SLOStatuses(); sts[0].Total != 1 {
		t.Fatalf("gated SLO still counted: %d", sts[0].Total)
	}
	r.SetWindowed(true)
	w.Observe(time.Millisecond)
	if ws, _ := r.WindowValue("op.latency"); ws.Count != 2 {
		t.Fatalf("re-enabled window count = %d, want 2", ws.Count)
	}

	// Snapshot carries windows and SLOs; Reset clears them.
	snap := r.Snapshot()
	if len(snap.Windows) != 1 || snap.Windows[0].Name != "op.latency" || snap.Windows[0].Count != 2 {
		t.Fatalf("snapshot windows = %+v", snap.Windows)
	}
	if len(snap.SLOs) != 1 {
		t.Fatalf("snapshot slos = %+v", snap.SLOs)
	}
	r.Reset()
	if ws, _ := r.WindowValue("op.latency"); ws.Count != 0 {
		t.Fatalf("reset window count = %d", ws.Count)
	}
	if sts := r.SLOStatuses(); sts[0].Total != 0 {
		t.Fatalf("reset SLO total = %d", sts[0].Total)
	}
}

// TestWindowedHistogramConcurrent hammers observe/rotate/snapshot from
// many goroutines while a fake clock advances through slice boundaries.
// Run with -race; correctness bound: a snapshot never reports more
// observations than were made, and never reports a value outside the
// observed range.
func TestWindowedHistogramConcurrent(t *testing.T) {
	w, clk := newTestWindow(2*time.Second, 4) // 500ms slices
	clk.set(100 * time.Second)

	const (
		writers  = 8
		perWrite = 2000
	)
	var total atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Clock advancer: step through slice boundaries to force rotations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := 100 * time.Second
		for {
			select {
			case <-stop:
				return
			default:
			}
			d += 100 * time.Millisecond
			clk.set(d)
		}
	}()

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWrite; i++ {
				w.Observe(time.Duration(1+(g*perWrite+i)%1000) * time.Microsecond)
				total.Add(1)
			}
		}(g)
	}

	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := w.Snapshot()
				if s.Count > total.Load()+uint64(writers) {
					t.Errorf("snapshot count %d exceeds observations made", s.Count)
					return
				}
				if s.Count > 0 {
					if p := s.Quantile(0.99); p < s.Min || p > s.Max {
						t.Errorf("p99 %v outside [%v, %v]", p, s.Min, s.Max)
						return
					}
				}
			}
		}()
	}

	// Let writers and readers finish, then stop the clock.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		// Writers/readers are bounded; the advancer needs the stop signal.
		for total.Load() < writers*perWrite {
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	<-done
}
