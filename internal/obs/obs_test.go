package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{999, 0},
		{1000, 0}, // exactly 1µs stays in bucket 0
		{1001, 1}, // just past 1µs
		{2000, 1}, // exactly 2µs
		{2001, 2}, // just past 2µs
		{4000, 2},
		{4001, 3},
		{time.Millisecond, 10},             // 1ms fits 1µs·2^10 = 1.024ms
		{1025 * time.Microsecond, 11},      // just past bucket 10's bound
		{time.Second, 20},                  // 1s ≈ 1µs·2^20 (1.048576s bound)
		{100 * time.Hour, HistBuckets - 1}, // clamped to last bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
		// The invariant the index encodes: d ≤ upper(i), and d > upper(i-1)
		// unless clamped.
		i := bucketIndex(c.d)
		if c.d > BucketUpper(i) && i != HistBuckets-1 {
			t.Errorf("d=%v exceeds its bucket upper bound %v", c.d, BucketUpper(i))
		}
		if i > 0 && i != HistBuckets-1 && c.d <= BucketUpper(i-1) {
			t.Errorf("d=%v fits the previous bucket (upper %v) but landed in %d", c.d, BucketUpper(i-1), i)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations at 500ns (bucket 0), 10 slow at 3µs (bucket 2).
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	wantSum := 90*500*time.Nanosecond + 10*3*time.Microsecond
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Mean() != wantSum/100 {
		t.Fatalf("Mean = %v, want %v", h.Mean(), wantSum/100)
	}
	// p50 interpolates inside bucket 0 (rank 50 of 90 in [0,1µs)), but
	// never reports below the observed minimum.
	if got := h.Quantile(0.5); got < 500*time.Nanosecond || got >= BucketUpper(0) {
		t.Errorf("p50 = %v, want within [500ns, %v)", got, BucketUpper(0))
	}
	// p99 lands near the top of bucket 2 and clamps to the observed max.
	if got := h.Quantile(0.99); got != 3*time.Microsecond {
		t.Errorf("p99 = %v, want 3µs (clamped to max)", got)
	}
	if got := h.Quantile(1); got != 3*time.Microsecond {
		t.Errorf("p100 = %v, want 3µs (clamped to max)", got)
	}
	b := h.Buckets()
	if b[0] != 90 || b[2] != 10 {
		t.Errorf("buckets = %v, want 90 in [0] and 10 in [2]", b[:4])
	}
	// Negative observations clamp to zero instead of corrupting the sum.
	h.Observe(-time.Second)
	if h.Count() != 101 || h.Sum() != wantSum {
		t.Errorf("negative observe: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Errorf("empty histogram: mean=%v p99=%v count=%d", h.Mean(), h.Quantile(0.99), h.Count())
	}
}

func TestHistogramQuantileBoundaries(t *testing.T) {
	// A single observation: every quantile is exactly that value
	// (interpolation clamps to the observed min == max).
	var h Histogram
	h.Observe(700 * time.Nanosecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 700*time.Nanosecond {
			t.Errorf("single-value q=%v = %v, want 700ns", q, got)
		}
	}

	// Uniform fill of one bucket: quantiles are monotone and stay inside
	// the observed [min, max] range, never at the raw bucket upper bound.
	var u Histogram
	for i := 0; i < 100; i++ {
		u.Observe(5 * time.Microsecond) // bucket [4µs, 8µs)
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.999, 1} {
		got := u.Quantile(q)
		if got != 5*time.Microsecond {
			t.Errorf("uniform q=%v = %v, want 5µs (clamped)", q, got)
		}
		if got < prev {
			t.Errorf("quantiles not monotone: q=%v gave %v < %v", q, got, prev)
		}
		prev = got
	}

	// Two distinct buckets: q=0 clamps to min, q=1 clamps to max, and the
	// crossover between buckets happens at the right rank.
	var b Histogram
	for i := 0; i < 50; i++ {
		b.Observe(500 * time.Nanosecond) // bucket 0
	}
	for i := 0; i < 50; i++ {
		b.Observe(10 * time.Microsecond) // bucket [8µs, 16µs)
	}
	if got := b.Quantile(0); got != 500*time.Nanosecond {
		t.Errorf("q=0 = %v, want min 500ns", got)
	}
	if got := b.Quantile(1); got != 10*time.Microsecond {
		t.Errorf("q=1 = %v, want max 10µs", got)
	}
	if got := b.Quantile(0.5); got < 500*time.Nanosecond || got > time.Microsecond {
		t.Errorf("q=0.5 = %v, want inside the first bucket", got)
	}
	if got := b.Quantile(0.51); got < 8*time.Microsecond {
		t.Errorf("q=0.51 = %v, want inside the second bucket", got)
	}

	// Out-of-range q values clamp instead of panicking.
	if got := b.Quantile(-3); got != 500*time.Nanosecond {
		t.Errorf("q=-3 = %v, want min", got)
	}
	if got := b.Quantile(7); got != 10*time.Microsecond {
		t.Errorf("q=7 = %v, want max", got)
	}
}

func TestRegistryGetOrCreateAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Add(5)
	if r.Counter("a.count") != c {
		t.Fatal("Counter lookup is not stable")
	}
	r.Gauge("a.gauge").Set(-3)
	r.Histogram("a.lat").Observe(time.Microsecond)

	if v := r.CounterValue("a.count"); v != 5 {
		t.Errorf("CounterValue = %d, want 5", v)
	}
	if v := r.GaugeValue("a.gauge"); v != -3 {
		t.Errorf("GaugeValue = %d, want -3", v)
	}
	if v := r.CounterValue("missing"); v != 0 {
		t.Errorf("missing counter = %d, want 0", v)
	}

	r.Reset()
	if c.Value() != 0 || r.GaugeValue("a.gauge") != 0 || r.Histogram("a.lat").Count() != 0 {
		t.Error("Reset did not zero metrics")
	}
	c.Inc() // held pointer survives reset
	if r.CounterValue("a.count") != 1 {
		t.Error("held counter pointer detached after Reset")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(2)
	r.Gauge("x").Set(1)
	r.Gauge("x").Add(1)
	r.Histogram("x").Observe(time.Second)
	r.Reset()
	if r.CounterValue("x") != 0 || r.GaugeValue("x") != 0 {
		t.Error("nil registry returned nonzero values")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}

	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Start("op")
	if sp != nil {
		t.Fatal("nil tracer Start returned non-nil span")
	}
	sp.SetInt("k", 1).SetStr("s", "v")
	child := sp.Child("c")
	child.End()
	sp.AddChild("pre", time.Second)
	sp.End()
	if sp.String() != "" {
		t.Error("nil span rendered non-empty")
	}
	if tr.Recent() != nil {
		t.Error("nil tracer has recent spans")
	}
	tr.Clear()
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if v := r.CounterValue("shared"); v != 8000 {
		t.Errorf("shared counter = %d, want 8000", v)
	}
	if n := r.Histogram("lat").Count(); n != 8000 {
		t.Errorf("histogram count = %d, want 8000", n)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("query")
	root.SetStr("schema", "euter")
	c1 := root.Child("conjunct-0")
	c1.SetInt("rows", 9)
	c1.End()
	c2 := root.Child("conjunct-1")
	g := c2.Child("probe")
	g.End()
	c2.End()
	root.AddChild("premeasured", 5*time.Millisecond)
	root.End()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("Recent len = %d, want 1", len(recent))
	}
	got := recent[0]
	if got.Name != "query" || len(got.Children) != 3 {
		t.Fatalf("root = %q with %d children, want query/3", got.Name, len(got.Children))
	}
	if got.Children[1].Children[0].Name != "probe" {
		t.Errorf("grandchild = %q, want probe", got.Children[1].Children[0].Name)
	}
	if got.Children[1].Children[0].Depth() != 2 {
		t.Errorf("grandchild depth = %d, want 2", got.Children[1].Children[0].Depth())
	}
	if got.Children[2].Duration != 5*time.Millisecond {
		t.Errorf("premeasured child duration = %v", got.Children[2].Duration)
	}
	if got.Duration <= 0 {
		t.Error("root duration not stamped")
	}
	s := got.String()
	for _, want := range []string{"query", "  conjunct-0", "rows=9", "    probe", "schema=euter"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, s)
		}
	}
}

func TestTracerRingCapacity(t *testing.T) {
	tr := NewTracer(2)
	for _, name := range []string{"a", "b", "c"} {
		tr.Start(name).End()
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].Name != "b" || recent[1].Name != "c" {
		names := make([]string, len(recent))
		for i, s := range recent {
			names[i] = s.Name
		}
		t.Fatalf("ring = %v, want [b c]", names)
	}
	tr.Clear()
	if len(tr.Recent()) != 0 {
		t.Error("Clear left spans behind")
	}
}

func TestSnapshotTableAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.query.count").Add(3)
	r.Counter("a").Inc()
	r.Gauge("fed.members").Set(2)
	r.Histogram("engine.query.latency").Observe(2 * time.Microsecond)

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	table := s.Table()
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), table)
	}
	// Aligned: every value column starts at the same offset.
	if !strings.Contains(lines[0], "a                    ") && !strings.Contains(table, "engine.query.count") {
		t.Errorf("unexpected table:\n%s", table)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v", err)
	}
	if len(decoded.Counters) != 2 || decoded.Counters[1].Value != 3 {
		t.Errorf("decoded snapshot = %+v", decoded)
	}
}

func TestHistogramMinMax(t *testing.T) {
	var h Histogram
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: min=%v max=%v", h.Min(), h.Max())
	}
	h.Observe(3 * time.Microsecond)
	if h.Min() != 3*time.Microsecond || h.Max() != 3*time.Microsecond {
		t.Fatalf("single observation: min=%v max=%v", h.Min(), h.Max())
	}
	h.Observe(500 * time.Nanosecond)
	h.Observe(9 * time.Millisecond)
	if h.Min() != 500*time.Nanosecond {
		t.Errorf("Min = %v, want 500ns", h.Min())
	}
	if h.Max() != 9*time.Millisecond {
		t.Errorf("Max = %v, want 9ms", h.Max())
	}
	// A genuine zero observation must become the min (zero-value
	// sentinel must not hide it).
	h.Observe(0)
	if h.Min() != 0 {
		t.Errorf("Min after zero observation = %v, want 0", h.Min())
	}
	h.reset()
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Errorf("after reset: min=%v max=%v count=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramMinMaxConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 250; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Min() != time.Nanosecond {
		t.Errorf("Min = %v, want 1ns", h.Min())
	}
	if h.Max() != 7250*time.Nanosecond {
		t.Errorf("Max = %v, want 7.25µs", h.Max())
	}
}

func TestSnapshotMinMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.latency")
	h.Observe(2 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	hv := s.Histograms[0]
	if hv.MinNS != int64(2*time.Microsecond) || hv.MaxNS != int64(5*time.Millisecond) {
		t.Fatalf("snapshot min/max = %d/%d", hv.MinNS, hv.MaxNS)
	}
	table := s.Table()
	if !strings.Contains(table, "min=2µs") || !strings.Contains(table, "max=5ms") {
		t.Fatalf("table missing exact extrema:\n%s", table)
	}
}
