package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// SLO tracking: a target latency plus an availability objective (the
// fraction of operations that must finish under the target without an
// error). The tracker counts good and bad operations over a rolling
// window and reports the error-budget burn rate — how fast the window's
// bad fraction is consuming the budget the objective allows. Burn 1.0
// means "exactly on budget"; sustained burn above 1 means the SLO will
// be violated if the window's behavior continues.

// Default SLO parameters for registry-created trackers.
const (
	// DefaultSLOTarget is the latency above which an operation counts
	// against the error budget.
	DefaultSLOTarget = 100 * time.Millisecond
	// DefaultSLOObjective is the fraction of operations that must be
	// good (fast and error-free).
	DefaultSLOObjective = 0.999
)

// counterSlice is one time slice of a windowed counter.
type counterSlice struct {
	mu   sync.Mutex
	slot atomic.Int64
	n    atomic.Uint64
}

// windowedCounter counts events over a rolling window using the same
// slot-ring discipline as WindowedHistogram.
type windowedCounter struct {
	sliceNS int64
	slices  []counterSlice
}

func newWindowedCounter(window time.Duration, slices int) *windowedCounter {
	if window < time.Second {
		window = time.Second
	}
	if slices < 2 {
		slices = 2
	}
	w := &windowedCounter{sliceNS: int64(window) / int64(slices), slices: make([]counterSlice, slices)}
	for i := range w.slices {
		w.slices[i].slot.Store(-1)
	}
	return w
}

func (w *windowedCounter) inc(now time.Time) {
	slot := now.UnixNano() / w.sliceNS
	s := &w.slices[int(slot)%len(w.slices)]
	if s.slot.Load() != slot {
		s.mu.Lock()
		if s.slot.Load() != slot {
			s.n.Store(0)
			s.slot.Store(slot)
		}
		s.mu.Unlock()
	}
	s.n.Add(1)
}

func (w *windowedCounter) total(now time.Time) uint64 {
	nowSlot := now.UnixNano() / w.sliceNS
	minSlot := nowSlot - int64(len(w.slices)) + 1
	var sum uint64
	for i := range w.slices {
		s := &w.slices[i]
		slot := s.slot.Load()
		if slot >= minSlot && slot <= nowSlot {
			sum += s.n.Load()
		}
	}
	return sum
}

// SLOTracker classifies operations against a latency target and an
// availability objective over a rolling window. A nil *SLOTracker is a
// no-op.
type SLOTracker struct {
	name      string
	window    time.Duration
	targetNS  atomic.Int64
	objective atomic.Uint64 // math.Float64bits
	total     *windowedCounter
	bad       *windowedCounter
	enabled   *atomic.Bool
	now       func() time.Time
}

// NewSLO returns a tracker for the named operation: observations slower
// than target (or erroring) count against the error budget 1-objective.
func NewSLO(name string, target time.Duration, objective float64, window time.Duration, slices int) *SLOTracker {
	if objective <= 0 || objective >= 1 {
		objective = DefaultSLOObjective
	}
	if target <= 0 {
		target = DefaultSLOTarget
	}
	on := &atomic.Bool{}
	on.Store(true)
	t := &SLOTracker{
		name:    name,
		window:  window,
		total:   newWindowedCounter(window, slices),
		bad:     newWindowedCounter(window, slices),
		enabled: on,
		now:     time.Now,
	}
	t.targetNS.Store(int64(target))
	t.objective.Store(math.Float64bits(objective))
	return t
}

// Name returns the tracked operation's name.
func (t *SLOTracker) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// SetTarget changes the latency target at runtime.
func (t *SLOTracker) SetTarget(d time.Duration) {
	if t != nil && d > 0 {
		t.targetNS.Store(int64(d))
	}
}

// SetObjective changes the availability objective (0 < o < 1).
func (t *SLOTracker) SetObjective(o float64) {
	if t != nil && o > 0 && o < 1 {
		t.objective.Store(math.Float64bits(o))
	}
}

// Observe classifies one operation: bad when it errored or exceeded the
// latency target.
func (t *SLOTracker) Observe(d time.Duration, failed bool) {
	if t == nil || !t.enabled.Load() {
		return
	}
	now := t.now()
	t.total.inc(now)
	if failed || int64(d) > t.targetNS.Load() {
		t.bad.inc(now)
	}
}

// SLOStatus is a tracker's point-in-time report.
type SLOStatus struct {
	Name        string        `json:"name"`
	TargetNS    int64         `json:"target_ns"`
	Objective   float64       `json:"objective"`
	WindowNS    int64         `json:"window_ns"`
	Total       uint64        `json:"total"`
	Bad         uint64        `json:"bad"`
	BadFraction float64       `json:"bad_fraction"`
	BurnRate    float64       `json:"burn_rate"`
	Healthy     bool          `json:"healthy"`
	Target      time.Duration `json:"-"`
	Window      time.Duration `json:"-"`
}

// Status reports the window's counts and burn rate. An empty window is
// healthy: no traffic burns no budget.
func (t *SLOTracker) Status() SLOStatus {
	if t == nil {
		return SLOStatus{Healthy: true}
	}
	now := t.now()
	target := time.Duration(t.targetNS.Load())
	obj := math.Float64frombits(t.objective.Load())
	st := SLOStatus{
		Name:      t.name,
		TargetNS:  int64(target),
		Target:    target,
		Objective: obj,
		WindowNS:  int64(t.window),
		Window:    t.window,
		Total:     t.total.total(now),
		Bad:       t.bad.total(now),
	}
	if st.Total > 0 {
		st.BadFraction = float64(st.Bad) / float64(st.Total)
		st.BurnRate = st.BadFraction / (1 - obj)
	}
	st.Healthy = st.BurnRate <= 1
	return st
}

// String renders the status as a one-liner for health commands.
func (s SLOStatus) String() string {
	state := "ok"
	if !s.Healthy {
		state = "BURNING"
	}
	return fmt.Sprintf("slo %s: target=%s objective=%.4g window=%s bad=%d/%d burn=%.2f %s",
		s.Name, s.Target, s.Objective, s.Window, s.Bad, s.Total, s.BurnRate, state)
}
