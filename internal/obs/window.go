package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Windowed histograms: where Histogram accumulates since reset (useful
// for totals, useless for "p99 over the last minute"), WindowedHistogram
// keeps a ring of time slices and merges the live ones on read, so
// quantiles roll: an observation ages out of the reported distribution
// after at most one window. Observe is lock-free in the steady state —
// one atomic slot check plus the Histogram's atomic adds; the only lock
// is a per-slice mutex taken once per slice rotation.

// Defaults for registry-created windows and SLO trackers.
const (
	// DefaultWindow is the rolling-window length for registry-created
	// windowed histograms and SLO trackers.
	DefaultWindow = 60 * time.Second
	// DefaultWindowSlices is how many time slices a default window is
	// divided into (slice length = window / slices).
	DefaultWindowSlices = 12
)

// windowSlice is one time slice of the ring: the slot number it
// currently holds (now/sliceDur) plus an atomic histogram of the
// observations that landed in that slot.
type windowSlice struct {
	mu   sync.Mutex // serializes rotation (reset + slot publish)
	slot atomic.Int64
	h    Histogram
}

// rotate resets the slice for a new slot. Double-checked under the
// mutex so concurrent observers rotate once; an observer that raced
// past the check lands its observation in the fresh slot — a one-slice
// attribution skew, acceptable for monitoring.
func (s *windowSlice) rotate(slot int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slot.Load() == slot {
		return
	}
	s.h.reset()
	s.slot.Store(slot)
}

// WindowedHistogram is a rolling-window latency histogram: a ring of
// time-sliced atomic histograms merged on read. A nil
// *WindowedHistogram is a no-op, matching the rest of the package.
type WindowedHistogram struct {
	sliceNS int64
	slices  []windowSlice
	// enabled gates observation; registry-created windows share the
	// registry's flag so SetWindowed flips them all at once.
	enabled *atomic.Bool
	// now is the clock, injectable for deterministic tests.
	now func() time.Time
}

// NewWindow returns a windowed histogram covering the given window in
// the given number of slices (window minimum 1s, slices clamped to
// [2, 128]).
func NewWindow(window time.Duration, slices int) *WindowedHistogram {
	if window < time.Second {
		window = time.Second
	}
	if slices < 2 {
		slices = 2
	}
	if slices > 128 {
		slices = 128
	}
	on := &atomic.Bool{}
	on.Store(true)
	w := &WindowedHistogram{
		sliceNS: int64(window) / int64(slices),
		slices:  make([]windowSlice, slices),
		enabled: on,
		now:     time.Now,
	}
	// Slot 0 is a real slot for clocks near the epoch; park fresh slices
	// at an impossible slot so they never merge before first use.
	for i := range w.slices {
		w.slices[i].slot.Store(-1)
	}
	return w
}

// Window returns the rolling-window length.
func (w *WindowedHistogram) Window() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.sliceNS * int64(len(w.slices)))
}

// Observe records one duration into the current time slice.
func (w *WindowedHistogram) Observe(d time.Duration) {
	if w == nil || !w.enabled.Load() {
		return
	}
	slot := w.now().UnixNano() / w.sliceNS
	s := &w.slices[int(slot)%len(w.slices)]
	if s.slot.Load() != slot {
		s.rotate(slot)
	}
	s.h.Observe(d)
}

// WindowSnapshot is the merged distribution of the observations inside
// the rolling window at snapshot time.
type WindowSnapshot struct {
	Window time.Duration
	Count  uint64
	Sum    time.Duration
	Min    time.Duration
	Max    time.Duration
	Counts [HistBuckets]uint64
}

// Snapshot merges the live slices (slot within the last len(slices)
// slots, inclusive of the current one) into one distribution.
func (w *WindowedHistogram) Snapshot() WindowSnapshot {
	if w == nil {
		return WindowSnapshot{}
	}
	nowSlot := w.now().UnixNano() / w.sliceNS
	out := WindowSnapshot{Window: w.Window()}
	minSlot := nowSlot - int64(len(w.slices)) + 1
	for i := range w.slices {
		s := &w.slices[i]
		slot := s.slot.Load()
		if slot < minSlot || slot > nowSlot {
			continue // aged out (or parked): not part of the window
		}
		n := s.h.Count()
		if n == 0 {
			continue
		}
		out.Count += n
		out.Sum += s.h.Sum()
		if mn := s.h.Min(); out.Count == n || mn < out.Min {
			out.Min = mn
		}
		if mx := s.h.Max(); mx > out.Max {
			out.Max = mx
		}
		for b := 0; b < HistBuckets; b++ {
			out.Counts[b] += s.h.counts[b].Load()
		}
	}
	return out
}

// Quantile returns the q-th quantile of the windowed distribution,
// interpolated within its bucket and clamped to the observed extrema.
func (s WindowSnapshot) Quantile(q float64) time.Duration {
	return quantileOf(&s.Counts, s.Count, s.Min, s.Max, q)
}

// Mean returns the average observation in the window (0 when empty).
func (s WindowSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Rate returns observations per second over the window.
func (s WindowSnapshot) Rate() float64 {
	if s.Window <= 0 {
		return 0
	}
	return float64(s.Count) / s.Window.Seconds()
}
