// Package ast defines the abstract syntax of IDL: query expressions
// (paper §4.1), higher-order tuple expressions (§4.3), update expressions
// (§5.1), rules/views (§6) and update programs (§7).
//
// The grammar implemented (paper grammar plus the extensions the paper
// uses informally — negation on any expression, top-level conjunction,
// variables as attribute names, signed sub-expressions, arithmetic):
//
//	Exp    → ¬ PExp | PExp
//	PExp   → Aexp | Texp | Sexp | ε
//	Aexp   → [sign] Relop Term
//	Texp   → [sign] .Aname Exp { , Texp }
//	Sexp   → [sign] ( Exp )
//	Aname  → constant | Variable          (variable ⇒ higher-order)
//	Relop  → < | ≤ | = | ≠ | > | ≥
//	Term   → constant | Variable | Term (+|-|*) Term
//	sign   → + | -
//
//	Query   → ? Texp                      (conjunction over the universe)
//	Rule    → Texp ← Texp                 (head simple, body general)
//	Clause  → Texp → Texp                 (update program clause)
package ast

import (
	"idl/internal/object"
)

// RelOp is a comparison operator in an atomic expression.
type RelOp uint8

// The six relational operators of the paper's grammar.
const (
	OpEQ RelOp = iota // =
	OpNE              // ≠ (!=)
	OpLT              // <
	OpLE              // ≤ (<=)
	OpGT              // >
	OpGE              // ≥ (>=)
)

// String returns the ASCII rendering of the operator.
func (op RelOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return "?op?"
	}
}

// Sign marks an expression as a query part (SignNone) or as an update
// expression: plus (insert / make-true) or minus (delete / make-false).
type Sign int8

// Sign values.
const (
	SignNone  Sign = 0
	SignPlus  Sign = 1
	SignMinus Sign = -1
)

// String returns "", "+" or "-".
func (s Sign) String() string {
	switch s {
	case SignPlus:
		return "+"
	case SignMinus:
		return "-"
	default:
		return ""
	}
}

// ---------------------------------------------------------------------------
// Terms

// Term is a value-producing syntax node: a constant, a variable, or an
// arithmetic combination (the paper assumes arithmetic in footnote 8).
type Term interface {
	isTerm()
	String() string
}

// Const is a literal object (atom; aggregates occur via the API).
type Const struct {
	Value object.Object
}

// Var is a logical variable. Variables whose occurrences include
// attribute-name positions are higher-order variables (§4.3).
type Var struct {
	Name string
}

// Arith is a binary arithmetic term over numeric atoms.
type Arith struct {
	Op   byte // '+', '-', '*'
	L, R Term
}

func (Const) isTerm() {}
func (Var) isTerm()   {}
func (Arith) isTerm() {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression evaluated against an object. The Sign-carrying
// nodes (Atomic, AttrExpr, SetExpr) double as the paper's update
// expressions when their sign is non-zero.
type Expr interface {
	isExpr()
	String() string
}

// Epsilon is ε, the tautological expression satisfied by every object.
type Epsilon struct{}

// Not is a negated expression ¬exp (negation as failure).
type Not struct {
	X Expr
}

// Atomic is an atomic expression `[sign] relop term`, evaluated on atomic
// objects. With SignPlus it is the atomic plus expression `+=c` (replace
// value); with SignMinus the atomic minus `-=c` (null out if satisfied).
type Atomic struct {
	Sign Sign
	Op   RelOp
	Term Term
}

// AttrExpr is one conjunct of a tuple expression: `[sign] .name exp`.
// Name is a Const(Str) for ordinary attributes or a Var for higher-order
// quantification over attribute names. With SignPlus it creates/resets the
// attribute (tuple plus, §5.2); with SignMinus it deletes the attribute if
// the associated object satisfies Expr (tuple minus).
type AttrExpr struct {
	Sign Sign
	Name Term // Const(Str) or Var
	Expr Expr // may be Epsilon
}

// TupleExpr is a conjunction of conjuncts evaluated on a tuple object.
// Conjuncts are *AttrExpr, *Not (negating a conjunct), or *Constraint
// (the paper's footnote-7 Datalog-style `X = ource` form). Conjuncts may
// repeat an attribute (self-joins) — each conjunct must be satisfied under
// one shared substitution, but set-membership witnesses inside different
// conjuncts may differ.
type TupleExpr struct {
	Conjuncts []Expr
}

// Constraint is a Datalog-style side condition between two terms, e.g.
// `X = ource` or `P > Q`. The paper admits these informally (footnote 7);
// they evaluate against the substitution alone, not against any object.
type Constraint struct {
	L  Term
	Op RelOp
	R  Term
}

// SetExpr is `[sign] ( exp )`, evaluated on a set object. Unsigned: ∃
// element satisfying exp. SignPlus: insert a new element made true by exp.
// SignMinus: delete every element satisfying exp.
type SetExpr struct {
	Sign Sign
	X    Expr
}

// VarExpr lets a variable stand for a whole aggregate object in value
// position ("the more general ability to have variables representing
// aggregate objects", §4.1). `.euter.r = R` binds R to the relation
// object. Syntactically it is an Atomic with OpEQ; we keep a distinct node
// only where the operand must bind structures — the parser emits Atomic
// and the evaluator handles aggregate binding, so this node exists for API
// construction convenience.
type VarExpr struct {
	Name string
}

func (Epsilon) isExpr()     {}
func (*Not) isExpr()        {}
func (*Atomic) isExpr()     {}
func (*AttrExpr) isExpr()   {}
func (*TupleExpr) isExpr()  {}
func (*SetExpr) isExpr()    {}
func (*VarExpr) isExpr()    {}
func (*Constraint) isExpr() {}

// ---------------------------------------------------------------------------
// Statements

// Query is `? conjuncts` — a conjunction of expressions on the universe
// tuple under one substitution. When any conjunct contains an update sign
// it is an update request (§5.1) and conjuncts execute left → right.
type Query struct {
	Body *TupleExpr
}

// Rule is a view definition `head ← body` (§6). Head must be a simple
// tuple expression (only `=` atomics, no negation, no signs) whose
// variables all occur in the body. A rule whose head contains a
// higher-order variable defines a higher-order view.
type Rule struct {
	Head *TupleExpr
	Body *TupleExpr
}

// Clause is one clause of an update program `head → body` (§7.1). The
// head names the program and declares its parameters; the body is a
// conjunction of query and update expressions executed left → right.
// All clauses sharing a head name execute on invocation, in program order.
type Clause struct {
	Head *TupleExpr
	Body *TupleExpr
}

// Statement is any parsed top-level form.
type Statement interface {
	isStatement()
	String() string
}

func (*Query) isStatement()  {}
func (*Rule) isStatement()   {}
func (*Clause) isStatement() {}
