package ast

import (
	"idl/internal/object"
)

// Walk traverses the expression tree depth-first, calling fn for every
// Expr node. fn returning false prunes the subtree.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Not:
		Walk(x.X, fn)
	case *AttrExpr:
		Walk(x.Expr, fn)
	case *TupleExpr:
		for _, c := range x.Conjuncts {
			Walk(c, fn)
		}
	case *SetExpr:
		Walk(x.X, fn)
	}
}

// termVars appends the variable names occurring in t to out.
func termVars(t Term, out []string) []string {
	switch x := t.(type) {
	case Var:
		return append(out, x.Name)
	case Arith:
		out = termVars(x.L, out)
		return termVars(x.R, out)
	}
	return out
}

// Vars returns the variable names occurring in e, in first-occurrence
// order, without duplicates. Higher-order (attribute-position) variables
// are included.
func Vars(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	add := func(list []string) {
		for _, n := range list {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	Walk(e, func(node Expr) bool {
		switch x := node.(type) {
		case *Atomic:
			add(termVars(x.Term, nil))
		case *AttrExpr:
			add(termVars(x.Name, nil))
		case *VarExpr:
			add([]string{x.Name})
		case *Constraint:
			add(termVars(x.L, nil))
			add(termVars(x.R, nil))
		}
		return true
	})
	return names
}

// PositiveVars returns the variables with at least one occurrence outside
// any negation, in first-occurrence order. These are a query's answer
// variables: a variable occurring only under ¬ is existential inside the
// negation-as-failure check and never carries a binding out.
func PositiveVars(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	add := func(list []string) {
		for _, n := range list {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	var rec func(e Expr, underNot bool)
	rec = func(e Expr, underNot bool) {
		if e == nil {
			return
		}
		switch x := e.(type) {
		case *Not:
			rec(x.X, true)
		case *Atomic:
			if !underNot {
				add(termVars(x.Term, nil))
			}
		case *VarExpr:
			if !underNot {
				add([]string{x.Name})
			}
		case *Constraint:
			if !underNot {
				add(termVars(x.L, nil))
				add(termVars(x.R, nil))
			}
		case *AttrExpr:
			if !underNot {
				add(termVars(x.Name, nil))
			}
			rec(x.Expr, underNot)
		case *TupleExpr:
			for _, c := range x.Conjuncts {
				rec(c, underNot)
			}
		case *SetExpr:
			rec(x.X, underNot)
		}
	}
	rec(e, false)
	return names
}

// HigherOrderVars returns the variables that occur in attribute-name
// position anywhere in e, in first-occurrence order.
func HigherOrderVars(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	Walk(e, func(node Expr) bool {
		if a, ok := node.(*AttrExpr); ok {
			if v, isVar := a.Name.(Var); isVar && !seen[v.Name] {
				seen[v.Name] = true
				names = append(names, v.Name)
			}
		}
		return true
	})
	return names
}

// HasUpdate reports whether e contains any signed (update) node.
func HasUpdate(e Expr) bool {
	found := false
	Walk(e, func(node Expr) bool {
		switch x := node.(type) {
		case *Atomic:
			if x.Sign != SignNone {
				found = true
			}
		case *AttrExpr:
			if x.Sign != SignNone {
				found = true
			}
		case *SetExpr:
			if x.Sign != SignNone {
				found = true
			}
		}
		return !found
	})
	return found
}

// IsSimple reports whether e is a simple expression (paper §4.1): only `=`
// atomic expressions, no negation, and no update signs. Rule heads must be
// simple.
func IsSimple(e Expr) bool {
	simple := true
	Walk(e, func(node Expr) bool {
		switch x := node.(type) {
		case *Not:
			simple = false
		case *Atomic:
			if x.Op != OpEQ || x.Sign != SignNone {
				simple = false
			}
		case *AttrExpr:
			if x.Sign != SignNone {
				simple = false
			}
		case *SetExpr:
			if x.Sign != SignNone {
				simple = false
			}
		case *Constraint:
			if x.Op != OpEQ {
				simple = false
			}
		}
		return simple
	})
	return simple
}

// IsGround reports whether e contains no variables.
func IsGround(e Expr) bool { return len(Vars(e)) == 0 }

// ---------------------------------------------------------------------------
// Construction helpers (used by the public API, tests and benchmarks to
// build expressions without going through the parser).

// Attr builds an attribute conjunct `.name expr` with a constant name.
func Attr(name string, expr Expr) *AttrExpr {
	return &AttrExpr{Name: Const{Value: object.Str(name)}, Expr: expr}
}

// AttrVar builds a higher-order conjunct `.Name expr` with a variable
// attribute name.
func AttrVar(varName string, expr Expr) *AttrExpr {
	return &AttrExpr{Name: Var{Name: varName}, Expr: expr}
}

// Path builds the nested expression `.p0.p1…pn expr`. Each segment is a
// constant attribute name; pass the innermost expression last (nil for ε).
func Path(segments []string, inner Expr) *AttrExpr {
	if len(segments) == 0 {
		panic("ast.Path: need at least one segment")
	}
	if inner == nil {
		inner = Epsilon{}
	}
	e := inner
	for i := len(segments) - 1; i >= 1; i-- {
		e = &TupleExpr{Conjuncts: []Expr{Attr(segments[i], e)}}
	}
	// Unwrap: the outermost segment is returned as an AttrExpr directly.
	if len(segments) == 1 {
		return Attr(segments[0], inner)
	}
	te := e.(*TupleExpr)
	return Attr(segments[0], &TupleExpr{Conjuncts: te.Conjuncts})
}

// Conj builds a tuple expression from conjuncts (attribute expressions,
// negations, or constraints).
func Conj(conjuncts ...Expr) *TupleExpr { return &TupleExpr{Conjuncts: conjuncts} }

// Eq, Ne, Lt, Le, Gt, Ge build atomic comparison expressions against a Go
// literal (converted like object.TupleOf) or an ast.Term.
func Eq(v any) *Atomic { return &Atomic{Op: OpEQ, Term: toTerm(v)} }

// Ne builds `!= v`.
func Ne(v any) *Atomic { return &Atomic{Op: OpNE, Term: toTerm(v)} }

// Lt builds `< v`.
func Lt(v any) *Atomic { return &Atomic{Op: OpLT, Term: toTerm(v)} }

// Le builds `<= v`.
func Le(v any) *Atomic { return &Atomic{Op: OpLE, Term: toTerm(v)} }

// Gt builds `> v`.
func Gt(v any) *Atomic { return &Atomic{Op: OpGT, Term: toTerm(v)} }

// Ge builds `>= v`.
func Ge(v any) *Atomic { return &Atomic{Op: OpGE, Term: toTerm(v)} }

// V builds a variable term.
func V(name string) Var { return Var{Name: name} }

// C builds a constant term from a Go literal.
func C(v any) Const { return Const{Value: toObject(v)} }

// In wraps an expression as a set-membership expression `(exp)`.
func In(e Expr) *SetExpr { return &SetExpr{X: e} }

// Neg negates an expression.
func Neg(e Expr) *Not { return &Not{X: e} }

func toTerm(v any) Term {
	switch x := v.(type) {
	case Term:
		return x
	default:
		return Const{Value: toObject(v)}
	}
}

func toObject(v any) object.Object {
	switch x := v.(type) {
	case object.Object:
		return x
	case nil:
		return object.Null{}
	case bool:
		return object.Bool(x)
	case int:
		return object.Int(x)
	case int64:
		return object.Int(x)
	case float64:
		return object.Float(x)
	case string:
		return object.Str(x)
	default:
		panic("ast: cannot convert value to object")
	}
}
