package ast

import (
	"reflect"
	"testing"

	"idl/internal/object"
)

func TestRelOpString(t *testing.T) {
	want := map[RelOp]string{
		OpEQ: "=", OpNE: "!=", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=",
		RelOp(99): "?op?",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestSignString(t *testing.T) {
	if SignNone.String() != "" || SignPlus.String() != "+" || SignMinus.String() != "-" {
		t.Error("sign rendering broken")
	}
}

func TestBuildersAndPrinting(t *testing.T) {
	// ?.euter.r(.stkCode=hp, .clsPrice>60)
	q := &Query{Body: Conj(
		Attr("euter", Conj(Attr("r", In(Conj(
			Attr("stkCode", Eq("hp")),
			Attr("clsPrice", Gt(60)),
		))))),
	)}
	want := "?.euter.r(.stkCode=hp, .clsPrice>60)"
	if got := q.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestPathHelper(t *testing.T) {
	p := Path([]string{"euter", "r"}, In(Conj(Attr("x", Eq(1)))))
	if got := p.String(); got != ".euter.r(.x=1)" {
		t.Errorf("Path = %q", got)
	}
	single := Path([]string{"euter"}, nil)
	if got := single.String(); got != ".euter" {
		t.Errorf("single Path = %q", got)
	}
	deep := Path([]string{"a", "b", "c"}, Eq(5))
	if got := deep.String(); got != ".a.b.c=5" {
		t.Errorf("deep Path = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty Path should panic")
		}
	}()
	Path(nil, nil)
}

func TestComparatorBuilders(t *testing.T) {
	cases := []struct {
		e    *Atomic
		want string
	}{
		{Eq(1), "=1"}, {Ne(1), "!=1"}, {Lt(1), "<1"},
		{Le(1), "<=1"}, {Gt(1), ">1"}, {Ge(1), ">=1"},
		{Eq(V("X")), "=X"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("%q != %q", got, c.want)
		}
	}
}

func TestVarsOrderAndDedup(t *testing.T) {
	e := Conj(
		Attr("a", Eq(V("X"))),
		AttrVar("Y", Eq(V("X"))),
		&Constraint{L: V("Z"), Op: OpGT, R: Arith{Op: '+', L: V("X"), R: C(1)}},
	)
	got := Vars(e)
	want := []string{"X", "Y", "Z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Vars = %v, want %v", got, want)
	}
}

func TestHigherOrderVars(t *testing.T) {
	e := Conj(
		AttrVar("X", Conj(AttrVar("Y", Eq(V("P"))))),
		Attr("fixed", Eq(V("X"))),
	)
	got := HigherOrderVars(e)
	if !reflect.DeepEqual(got, []string{"X", "Y"}) {
		t.Errorf("HigherOrderVars = %v", got)
	}
}

func TestPositiveVars(t *testing.T) {
	// X positive, Y only under Not, Z in constraint under Not.
	e := Conj(
		Attr("a", Eq(V("X"))),
		Neg(Attr("b", Conj(Attr("c", Eq(V("Y"))), &Constraint{L: V("Z"), Op: OpEQ, R: C(1)}))),
	)
	got := PositiveVars(e)
	if !reflect.DeepEqual(got, []string{"X"}) {
		t.Errorf("PositiveVars = %v", got)
	}
	// A variable both inside and outside negation is positive.
	e2 := Conj(
		Attr("a", Eq(V("P"))),
		Neg(Attr("b", Gt(V("P")))),
	)
	if got := PositiveVars(e2); !reflect.DeepEqual(got, []string{"P"}) {
		t.Errorf("PositiveVars = %v", got)
	}
	if PositiveVars(nil) != nil {
		t.Error("nil expr should have no vars")
	}
}

func TestHasUpdate(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{Attr("a", Eq(1)), false},
		{&Atomic{Sign: SignPlus, Op: OpEQ, Term: C(1)}, true},
		{&AttrExpr{Sign: SignMinus, Name: C("a"), Expr: Epsilon{}}, true},
		{&SetExpr{Sign: SignPlus, X: Epsilon{}}, true},
		{Conj(Attr("a", Eq(1)), &SetExpr{Sign: SignMinus, X: Epsilon{}}), true},
		{Neg(Attr("a", Eq(1))), false},
	}
	for i, c := range cases {
		if got := HasUpdate(c.e); got != c.want {
			t.Errorf("case %d: HasUpdate(%s) = %v, want %v", i, c.e.String(), got, c.want)
		}
	}
}

func TestIsSimpleAndGround(t *testing.T) {
	simple := Conj(Attr("a", Eq(1)), Attr("b", In(Conj(Attr("c", Eq("x"))))))
	if !IsSimple(simple) {
		t.Error("should be simple")
	}
	if !IsGround(simple) {
		t.Error("should be ground")
	}
	cases := []Expr{
		Conj(Attr("a", Gt(1))),      // inequality
		Conj(Neg(Attr("a", Eq(1)))), // negation
		Conj(&AttrExpr{Sign: SignPlus, Name: Var{Name: "A"}, Expr: Eq(1)}), // sign
		Conj(&Constraint{L: V("X"), Op: OpLT, R: C(1)}),                    // non-eq constraint
	}
	for i, e := range cases {
		if IsSimple(e) {
			t.Errorf("case %d should not be simple", i)
		}
	}
	if IsGround(Conj(Attr("a", Eq(V("X"))))) {
		t.Error("variable expr is not ground")
	}
}

func TestWalkPrune(t *testing.T) {
	e := Conj(Attr("a", In(Conj(Attr("b", Eq(1))))), Attr("c", Eq(2)))
	var visited []string
	Walk(e, func(node Expr) bool {
		if a, ok := node.(*AttrExpr); ok {
			name := a.Name.(Const).Value.String()
			visited = append(visited, name)
			return name != "a" // prune below .a
		}
		return true
	})
	if !reflect.DeepEqual(visited, []string{"a", "c"}) {
		t.Errorf("visited = %v", visited)
	}
	Walk(nil, func(Expr) bool { t.Error("nil walk should not call fn"); return true })
}

func TestStatementStrings(t *testing.T) {
	r := &Rule{
		Head: Conj(Attr("v", Conj(Attr("p", &SetExpr{Sign: SignPlus, X: Conj(Attr("x", Eq(V("X"))))})))),
		Body: Conj(Attr("b", Conj(Attr("s", In(Conj(Attr("x", Eq(V("X"))))))))),
	}
	if got := r.String(); got != ".v.p+(.x=X) <- .b.s(.x=X)" {
		t.Errorf("rule String = %q", got)
	}
	c := &Clause{Head: r.Head, Body: r.Body}
	if got := c.String(); got != ".v.p+(.x=X) -> .b.s(.x=X)" {
		t.Errorf("clause String = %q", got)
	}
}

func TestArithString(t *testing.T) {
	a := Arith{Op: '+', L: V("C"), R: C(10)}
	if got := a.String(); got != "(C + 10)" {
		t.Errorf("Arith String = %q", got)
	}
}

func TestConstraintString(t *testing.T) {
	c := &Constraint{L: V("X"), Op: OpNE, R: C("date")}
	if got := c.String(); got != "X != date" {
		t.Errorf("Constraint String = %q", got)
	}
}

func TestVarExpr(t *testing.T) {
	v := &VarExpr{Name: "R"}
	if v.String() != "=R" {
		t.Errorf("VarExpr String = %q", v.String())
	}
	if got := Vars(Conj(Attr("a", v))); !reflect.DeepEqual(got, []string{"R"}) {
		t.Errorf("VarExpr vars = %v", got)
	}
}

func TestToTermAndObjectConversions(t *testing.T) {
	if !C(object.Int(5)).Value.Equal(object.Int(5)) {
		t.Error("object passthrough")
	}
	if !C(nil).Value.Equal(object.Null{}) {
		t.Error("nil -> null")
	}
	if !C(int64(7)).Value.Equal(object.Int(7)) {
		t.Error("int64")
	}
	if !C(true).Value.Equal(object.Bool(true)) {
		t.Error("bool")
	}
	defer func() {
		if recover() == nil {
			t.Error("unsupported type should panic")
		}
	}()
	C(struct{}{})
}
