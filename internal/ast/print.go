package ast

import (
	"strings"
)

// String renderings produce valid IDL surface syntax: every AST re-parses
// to an equal AST (tested in internal/parser round-trip tests).

func (c Const) String() string { return c.Value.String() }

func (v Var) String() string { return v.Name }

func (a Arith) String() string {
	return "(" + a.L.String() + " " + string(a.Op) + " " + a.R.String() + ")"
}

func (Epsilon) String() string { return "" }

func (n *Not) String() string { return "~" + n.X.String() }

func (a *Atomic) String() string {
	return a.Sign.String() + a.Op.String() + a.Term.String()
}

func (a *AttrExpr) String() string {
	var b strings.Builder
	b.WriteString(a.Sign.String())
	b.WriteByte('.')
	b.WriteString(a.Name.String())
	if a.Expr != nil {
		if s := a.Expr.String(); s != "" {
			// Path chains like `.euter.r(...)` need no space; atomic and
			// negated suffixes read better with none either, except a
			// bare relop needs no separator anyway.
			b.WriteString(s)
		}
	}
	return b.String()
}

func (t *TupleExpr) String() string {
	parts := make([]string, len(t.Conjuncts))
	for i, c := range t.Conjuncts {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}

func (s *SetExpr) String() string {
	return s.Sign.String() + "(" + s.X.String() + ")"
}

func (c *Constraint) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

func (v *VarExpr) String() string { return "=" + v.Name }

func (q *Query) String() string { return "?" + q.Body.String() }

func (r *Rule) String() string {
	return r.Head.String() + " <- " + r.Body.String()
}

func (c *Clause) String() string {
	return c.Head.String() + " -> " + c.Body.String()
}
