package ast

// Structural fingerprints for plan-cache keys. The fingerprint is a
// 64-bit FNV-1a hash over the node structure — type tags, operators,
// signs, names, and constant values — so two queries share a
// fingerprint exactly when their ASTs are structurally identical. It is
// deliberately not String()-based: renderings can collide (a constant
// string containing syntax) and re-rendering is slower than one walk.

const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211

	// fpVersion salts every fingerprint; bump it when the hashing
	// scheme changes so stale persisted keys can never alias.
	fpVersion uint64 = 1
)

func fpByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fpPrime }

func fpUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fpByte(h, byte(v>>(8*i)))
	}
	return h
}

func fpString(h uint64, s string) uint64 {
	h = fpUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = fpByte(h, s[i])
	}
	return h
}

// Node type tags. Distinct per syntax node so structurally different
// trees with coincident payloads cannot alias.
const (
	fpTagConst byte = iota + 1
	fpTagVar
	fpTagArith
	fpTagEpsilon
	fpTagNot
	fpTagAtomic
	fpTagAttr
	fpTagTuple
	fpTagConstraint
	fpTagSet
	fpTagVarExpr
	fpTagNil
)

// Fingerprint returns the structural hash of a query body.
func Fingerprint(q *Query) uint64 {
	h := fpUint64(fpOffset, fpVersion)
	return fpExpr(h, q.Body)
}

func fpTerm(h uint64, t Term) uint64 {
	switch t := t.(type) {
	case nil:
		return fpByte(h, fpTagNil)
	case Const:
		h = fpByte(h, fpTagConst)
		h = fpByte(h, byte(t.Value.Kind()))
		return fpUint64(h, t.Value.Hash())
	case Var:
		h = fpByte(h, fpTagVar)
		return fpString(h, t.Name)
	case Arith:
		h = fpByte(h, fpTagArith)
		h = fpByte(h, t.Op)
		h = fpTerm(h, t.L)
		return fpTerm(h, t.R)
	default:
		return fpString(fpByte(h, fpTagNil), t.String())
	}
}

func fpExpr(h uint64, e Expr) uint64 {
	switch e := e.(type) {
	case nil:
		return fpByte(h, fpTagNil)
	case Epsilon:
		return fpByte(h, fpTagEpsilon)
	case *Not:
		h = fpByte(h, fpTagNot)
		return fpExpr(h, e.X)
	case *Atomic:
		h = fpByte(h, fpTagAtomic)
		h = fpByte(h, byte(e.Sign)+2)
		h = fpByte(h, byte(e.Op))
		return fpTerm(h, e.Term)
	case *AttrExpr:
		h = fpByte(h, fpTagAttr)
		h = fpByte(h, byte(e.Sign)+2)
		h = fpTerm(h, e.Name)
		return fpExpr(h, e.Expr)
	case *TupleExpr:
		h = fpByte(h, fpTagTuple)
		h = fpUint64(h, uint64(len(e.Conjuncts)))
		for _, c := range e.Conjuncts {
			h = fpExpr(h, c)
		}
		return h
	case *Constraint:
		h = fpByte(h, fpTagConstraint)
		h = fpByte(h, byte(e.Op))
		h = fpTerm(h, e.L)
		return fpTerm(h, e.R)
	case *SetExpr:
		h = fpByte(h, fpTagSet)
		h = fpByte(h, byte(e.Sign)+2)
		return fpExpr(h, e.X)
	case *VarExpr:
		h = fpByte(h, fpTagVarExpr)
		return fpString(h, e.Name)
	default:
		return fpString(fpByte(h, fpTagNil), e.String())
	}
}
