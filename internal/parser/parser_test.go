package parser

import (
	"testing"

	"idl/internal/ast"
	"idl/internal/object"
)

func mustQuery(t *testing.T, src string) *ast.Query {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	return q
}

func TestSimpleAtomicQuery(t *testing.T) {
	q := mustQuery(t, "?.euter.r(.stkCode=hp, .clsPrice>60)")
	if len(q.Body.Conjuncts) != 1 {
		t.Fatalf("conjuncts = %d", len(q.Body.Conjuncts))
	}
	euter := q.Body.Conjuncts[0].(*ast.AttrExpr)
	if name := euter.Name.(ast.Const).Value; !name.Equal(object.Str("euter")) {
		t.Fatalf("outer attr = %v", name)
	}
	inner := euter.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	if name := inner.Name.(ast.Const).Value; !name.Equal(object.Str("r")) {
		t.Fatalf("inner attr = %v", name)
	}
	set, ok := inner.Expr.(*ast.SetExpr)
	if !ok {
		t.Fatalf("expected SetExpr, got %T", inner.Expr)
	}
	tup := set.X.(*ast.TupleExpr)
	if len(tup.Conjuncts) != 2 {
		t.Fatalf("tuple conjuncts = %d", len(tup.Conjuncts))
	}
	stk := tup.Conjuncts[0].(*ast.AttrExpr)
	at := stk.Expr.(*ast.Atomic)
	if at.Op != ast.OpEQ || !at.Term.(ast.Const).Value.Equal(object.Str("hp")) {
		t.Errorf("stkCode atomic = %v", at)
	}
	price := tup.Conjuncts[1].(*ast.AttrExpr)
	pa := price.Expr.(*ast.Atomic)
	if pa.Op != ast.OpGT || !pa.Term.(ast.Const).Value.Equal(object.Int(60)) {
		t.Errorf("clsPrice atomic = %v", pa)
	}
}

func TestConjunctionSharedVariables(t *testing.T) {
	q := mustQuery(t, "?.euter.r(.stkCode=hp,.date=D), .euter.r(.stkCode=ibm,.date=D)")
	if len(q.Body.Conjuncts) != 2 {
		t.Fatalf("conjuncts = %d", len(q.Body.Conjuncts))
	}
	vars := ast.Vars(q.Body)
	if len(vars) != 1 || vars[0] != "D" {
		t.Errorf("vars = %v", vars)
	}
}

func TestNegationSuffix(t *testing.T) {
	// Paper: ?.euter.r~(.stkCode=hp, .clsPrice>P)
	q := mustQuery(t, "?.euter.r~(.stkCode=hp, .clsPrice>P)")
	euter := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := euter.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	not, ok := r.Expr.(*ast.Not)
	if !ok {
		t.Fatalf("expected Not, got %T", r.Expr)
	}
	if _, ok := not.X.(*ast.SetExpr); !ok {
		t.Fatalf("expected negated SetExpr, got %T", not.X)
	}
}

func TestNegatedConjunct(t *testing.T) {
	q := mustQuery(t, "?~.euter.r(.stkCode=hp)")
	if _, ok := q.Body.Conjuncts[0].(*ast.Not); !ok {
		t.Fatalf("expected Not conjunct, got %T", q.Body.Conjuncts[0])
	}
}

func TestHigherOrderVariables(t *testing.T) {
	q := mustQuery(t, "?.X.Y(.stkCode)")
	outer := q.Body.Conjuncts[0].(*ast.AttrExpr)
	if _, ok := outer.Name.(ast.Var); !ok {
		t.Fatalf("outer name should be a variable, got %T", outer.Name)
	}
	hov := ast.HigherOrderVars(q.Body)
	if len(hov) != 2 || hov[0] != "X" || hov[1] != "Y" {
		t.Errorf("higher-order vars = %v", hov)
	}
	// .stkCode inside has epsilon suffix.
	inner := outer.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	set := inner.Expr.(*ast.SetExpr)
	attr := set.X.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	if _, ok := attr.Expr.(ast.Epsilon); !ok {
		t.Errorf("expected epsilon suffix, got %T", attr.Expr)
	}
}

func TestBareDatabaseQuery(t *testing.T) {
	q := mustQuery(t, "?.X")
	a := q.Body.Conjuncts[0].(*ast.AttrExpr)
	if _, ok := a.Expr.(ast.Epsilon); !ok {
		t.Errorf("expected epsilon, got %T", a.Expr)
	}
}

func TestConstraintConjunct(t *testing.T) {
	q := mustQuery(t, "?.X.Y, X = ource")
	c, ok := q.Body.Conjuncts[1].(*ast.Constraint)
	if !ok {
		t.Fatalf("expected Constraint, got %T", q.Body.Conjuncts[1])
	}
	if c.Op != ast.OpEQ {
		t.Errorf("op = %v", c.Op)
	}
	if v, ok := c.L.(ast.Var); !ok || v.Name != "X" {
		t.Errorf("lhs = %v", c.L)
	}
}

func TestDateLiterals(t *testing.T) {
	q := mustQuery(t, "?.euter.r(.date=3/3/85)")
	euter := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := euter.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	at := r.Expr.(*ast.SetExpr).X.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr).Expr.(*ast.Atomic)
	d, ok := at.Term.(ast.Const).Value.(object.Date)
	if !ok || d.Year != 1985 || d.Month != 3 || d.Day != 3 {
		t.Errorf("date = %v", at.Term)
	}
}

func TestInsertSetExpression(t *testing.T) {
	q := mustQuery(t, "?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)")
	euter := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := euter.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	set := r.Expr.(*ast.SetExpr)
	if set.Sign != ast.SignPlus {
		t.Fatalf("sign = %v", set.Sign)
	}
	if !ast.HasUpdate(q.Body) {
		t.Error("HasUpdate should be true")
	}
}

func TestDeleteSetExpression(t *testing.T) {
	q := mustQuery(t, "?.euter.r-(.date=3/3/85,.stkCode=hp)")
	euter := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := euter.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	set := r.Expr.(*ast.SetExpr)
	if set.Sign != ast.SignMinus {
		t.Fatalf("sign = %v", set.Sign)
	}
}

func TestAtomicMinusSugar(t *testing.T) {
	// `.hp-=C` — atomic minus applied to the hp value (nulls it out).
	q := mustQuery(t, "?.chwab.r(.date=3/3/85, .hp-=C)")
	chwab := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := chwab.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	tup := r.Expr.(*ast.SetExpr).X.(*ast.TupleExpr)
	hp := tup.Conjuncts[1].(*ast.AttrExpr)
	at := hp.Expr.(*ast.Atomic)
	if at.Sign != ast.SignMinus || at.Op != ast.OpEQ {
		t.Errorf("atomic = %+v", at)
	}
}

func TestAttributeDelete(t *testing.T) {
	// `-.hp=C` — tuple minus: delete the hp attribute.
	q := mustQuery(t, "?.chwab.r(.date=3/3/85, -.hp=C)")
	chwab := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := chwab.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	tup := r.Expr.(*ast.SetExpr).X.(*ast.TupleExpr)
	hp := tup.Conjuncts[1].(*ast.AttrExpr)
	if hp.Sign != ast.SignMinus {
		t.Errorf("attr sign = %v", hp.Sign)
	}
}

func TestRelationDelete(t *testing.T) {
	// `.ource-.S` — tuple minus on the database tuple: drop relation S.
	q := mustQuery(t, "?.ource-.S")
	ource := q.Body.Conjuncts[0].(*ast.AttrExpr)
	inner := ource.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	if inner.Sign != ast.SignMinus {
		t.Fatalf("sign = %v", inner.Sign)
	}
	if _, ok := inner.Name.(ast.Var); !ok {
		t.Fatalf("name should be var, got %T", inner.Name)
	}
}

func TestBareAttributeDeleteInSet(t *testing.T) {
	// `.chwab.r(-.S)` — delete attribute S from every tuple of r.
	q := mustQuery(t, "?.chwab.r(-.S)")
	chwab := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := chwab.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	tup := r.Expr.(*ast.SetExpr).X.(*ast.TupleExpr)
	s := tup.Conjuncts[0].(*ast.AttrExpr)
	if s.Sign != ast.SignMinus {
		t.Errorf("sign = %v", s.Sign)
	}
	if _, ok := s.Expr.(ast.Epsilon); !ok {
		t.Errorf("expr should be epsilon, got %T", s.Expr)
	}
}

func TestArithmeticInTerm(t *testing.T) {
	q := mustQuery(t, "?.chwab.r+(.date=3/3/85,.hp=C+10)")
	chwab := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := chwab.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	tup := r.Expr.(*ast.SetExpr).X.(*ast.TupleExpr)
	hp := tup.Conjuncts[1].(*ast.AttrExpr)
	at := hp.Expr.(*ast.Atomic)
	ar, ok := at.Term.(ast.Arith)
	if !ok || ar.Op != '+' {
		t.Fatalf("term = %#v", at.Term)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	q := mustQuery(t, "?.x.r(.a=B+2*3)")
	x := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := x.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	at := r.Expr.(*ast.SetExpr).X.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr).Expr.(*ast.Atomic)
	add := at.Term.(ast.Arith)
	if add.Op != '+' {
		t.Fatalf("top op = %c", add.Op)
	}
	mul, ok := add.R.(ast.Arith)
	if !ok || mul.Op != '*' {
		t.Fatalf("rhs = %#v", add.R)
	}
}

func TestNegativeNumbers(t *testing.T) {
	q := mustQuery(t, "?.x.r(.a<-5)")
	x := q.Body.Conjuncts[0].(*ast.AttrExpr)
	r := x.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	at := r.Expr.(*ast.SetExpr).X.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr).Expr.(*ast.Atomic)
	if at.Op != ast.OpLT || !at.Term.(ast.Const).Value.Equal(object.Int(-5)) {
		t.Errorf("atomic = %v %v", at.Op, at.Term)
	}
}

func TestRuleParsing(t *testing.T) {
	src := ".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)"
	r, err := ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Head.Conjuncts) != 1 || len(r.Body.Conjuncts) != 1 {
		t.Fatalf("head/body conjuncts = %d/%d", len(r.Head.Conjuncts), len(r.Body.Conjuncts))
	}
	// Unicode arrow too.
	r2, err := ParseRule(".a.b+(.x=Y) ← .c.d(.x=Y)")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Head == nil {
		t.Fatal("nil head")
	}
}

func TestClauseParsing(t *testing.T) {
	src := ".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)"
	c, err := ParseClause(src)
	if err != nil {
		t.Fatal(err)
	}
	head := c.Head.Conjuncts[0].(*ast.AttrExpr)
	if !head.Name.(ast.Const).Value.Equal(object.Str("dbU")) {
		t.Errorf("head db = %v", head.Name)
	}
	// Unicode arrow.
	if _, err := ParseClause(".a.f(.x=Y) → .b.r-(.k=Y)"); err != nil {
		t.Fatal(err)
	}
}

func TestParseProgramMultiStatement(t *testing.T) {
	src := `
		% unified view over euter
		.dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P);
		.dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P);
		?.dbI.p(.stk=hp, .price>60)
	`
	stmts, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
	if _, ok := stmts[0].(*ast.Rule); !ok {
		t.Errorf("stmt 0 = %T", stmts[0])
	}
	if _, ok := stmts[2].(*ast.Query); !ok {
		t.Errorf("stmt 2 = %T", stmts[2])
	}
}

func TestTrailingPeriodTolerated(t *testing.T) {
	if _, err := ParseProgram("?.euter.r(.stkCode=hp).; ?.X."); err != nil {
		t.Fatal(err)
	}
}

func TestQuotedAttributeNames(t *testing.T) {
	q := mustQuery(t, `?.euter."weird name"(.x=1)`)
	a := q.Body.Conjuncts[0].(*ast.AttrExpr)
	inner := a.Expr.(*ast.TupleExpr).Conjuncts[0].(*ast.AttrExpr)
	if !inner.Name.(ast.Const).Value.Equal(object.Str("weird name")) {
		t.Errorf("name = %v", inner.Name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"?",
		"?.",
		"?.x(",
		"?.x(.a=)",
		"?.x.y(.a=1",
		".a.b(.x=Y)",         // no arrow
		".a.b(.x=Y) <-",      // missing body
		"?.x.y(.a ~)",        // dangling negation
		"?.x +",              // dangling sign
		"? X",                // constraint without operator
		"?.x.y(.a=1) extra",  // trailing garbage
		"?.x.y(.a+<5)",       // signed non-equality atomic
		"@?",                 // lex error surfaces as parse error
		"?.x.y(.a=1)) ; ?.z", // unbalanced paren
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestParseSingleRejectsMulti(t *testing.T) {
	if _, err := Parse("?.x ; ?.y"); err == nil {
		t.Error("Parse should reject multiple statements")
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse should reject empty input")
	}
	if stmts, err := ParseProgram(""); err != nil || len(stmts) != 0 {
		t.Errorf("ParseProgram of empty input = %v, %v", stmts, err)
	}
}

func TestParseQueryRejectsRule(t *testing.T) {
	if _, err := ParseQuery(".a.b(.x=Y) <- .c.d(.x=Y)"); err == nil {
		t.Error("ParseQuery should reject a rule")
	}
}

// TestRoundTrip checks String() output re-parses to the same rendering for
// every statement in the paper.
func TestRoundTrip(t *testing.T) {
	sources := []string{
		"?.euter.r(.stkCode=hp, .clsPrice>60)",
		"?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)",
		"?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r~(.stkCode=hp, .clsPrice>P)",
		"?.euter.r(.stkCode=S, .clsPrice>200)",
		"?.X",
		"?.ource.Y",
		"?.X.Y, X = ource",
		"?.X.hp",
		"?.X.Y(.stkCode)",
		"?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)",
		"?.euter.Y, .chwab.Y, .ource.Y",
		"?.chwab.r(.S>200)",
		"?.ource.S(.clsPrice > 200)",
		"?.chwab.r(.date=3/3/85,.hp = 50)",
		"?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)",
		"?.euter.r-(.date=3/3/85,.stkCode=hp)",
		"?.euter.r(.date=3/3/85,.stkCode=hp,.clsPrice=C),.euter.r-(.date=3/3/85,.stkCode=hp,.clsPrice=C)",
		"?.chwab.r(.date=3/3/85, .hp-=C)",
		"?.chwab.r(.date=3/3/85, -.hp=C)",
		"?.chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)",
		"?.chwab.r(-.S)",
		"?.ource-.S",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P)",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
		".dbE.r+(.date=D, .stkCode=S, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
		".dbC.r+(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
		".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
		".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
		".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.date=D, .S-=X)",
		".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)",
		".dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S)",
		".dbU.rmStk(.stk=S) -> .chwab.r(-.S)",
		".dbU.rmStk(.stk=S) -> .ource-.S",
		".dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S,.date=D,.clsPrice=P)",
	}
	for _, src := range sources {
		st1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := st1.String()
		st2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (printed %q): %v", src, printed, err)
			continue
		}
		if st2.String() != printed {
			t.Errorf("round-trip not stable:\n src: %s\n  p1: %s\n  p2: %s", src, printed, st2.String())
		}
	}
}
