package parser

import (
	"testing"

	"idl/internal/lex"
)

// FuzzParse checks that arbitrary input never panics the lexer or parser,
// and that anything that parses re-parses from its printed form to a
// stable rendering (print/parse round trip).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"?.euter.r(.stkCode=hp, .clsPrice>60)",
		"?.chwab.r(.S>200)",
		"?.X.Y, X = ource",
		"?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)",
		"?.chwab.r(.date=3/3/85, .hp-=C)",
		"?.ource-.S",
		".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date",
		".dbU.rmStk(.stk=S) -> .chwab.r(-.S)",
		"?.a.b(.c=1); ?.d.e(.f=2)",
		"?~.x.y(.z=(1+2)*3)",
		`?.a."quoted attr"(.x="string")`,
		"% comment\n?.x",
		"?.x.y(.a<-5)",
		"?.5 .x ( ) ;;; ~~~",
		"?.é.ü(.ß=1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Must never panic.
		stmts, err := ParseProgram(src)
		if err != nil {
			return
		}
		for _, st := range stmts {
			printed := st.String()
			again, err := Parse(printed)
			if err != nil {
				t.Fatalf("printed form %q of %q does not re-parse: %v", printed, src, err)
			}
			if again.String() != printed {
				t.Fatalf("unstable round trip: %q -> %q", printed, again.String())
			}
		}
	})
}

// FuzzLex checks the lexer terminates and never panics, and that every
// token carries a sane position.
func FuzzLex(f *testing.F) {
	f.Add("?.x.y(.a=1)")
	f.Add("3/3/85 2.5e10 \"str\" <- -> ≠ ≤ ≥ ¬")
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, src string) {
		toks := lex.Tokens(src)
		if len(toks) == 0 || toks[len(toks)-1].Kind != lex.EOF {
			t.Fatal("token stream must end with EOF")
		}
		for _, tok := range toks {
			if tok.Pos.Line < 1 || tok.Pos.Col < 1 {
				t.Fatalf("bad position %v for %v", tok.Pos, tok)
			}
		}
	})
}
