package parser

import (
	"testing"

	"idl/internal/lex"
)

const benchQuery = "?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r~(.stkCode=hp, .clsPrice>P), .chwab.r(.date=D,.S=P2), P2 = P+10"

const benchRule = ".dbI.p+(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date"

func BenchmarkLex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		toks := lex.Tokens(benchQuery)
		if toks[len(toks)-1].Kind != lex.EOF {
			b.Fatal("bad lex")
		}
	}
}

func BenchmarkParseQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseRule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRule(benchRule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrintRoundTrip(b *testing.B) {
	q, err := ParseQuery(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(q.String()); err != nil {
			b.Fatal(err)
		}
	}
}
