// Package parser builds IDL abstract syntax from source text.
//
// The concrete syntax follows the paper with these conventions:
//
//   - `?` begins a query / update request; rules use `<-` (or `←`),
//     update-program clauses use `->` (or `→`).
//   - Negation is written `~`, `!` or `¬` and may prefix any expression,
//     including a whole conjunct (`~.euter.r(...)`) or a suffix
//     (`.euter.r~(...)`) as the paper writes it.
//   - Update signs `+`/`-` may prefix a set expression (`.r+(...)`), an
//     attribute conjunct (`-.hp=C`, `.ource-.S`) or an atomic expression
//     (`.hp-=C`, `+=5`), mirroring §5's three update-expression forms.
//   - Datalog-style constraints (`X = ource`, footnote 7) are accepted as
//     conjuncts.
//   - Arithmetic `+ - *` with the usual precedence is accepted in term
//     position (footnote 8).
//   - Statements in a script are separated by `;`. A lone trailing `.`
//     (the paper's sentence-final period) is tolerated at statement end.
//   - Comments run from `%` or `//` to end of line.
package parser

import (
	"fmt"
	"strings"

	"idl/internal/ast"
	"idl/internal/lex"
	"idl/internal/object"
)

// Error is a parse error with source position.
type Error struct {
	Pos lex.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []lex.Token
	pos  int
}

// Parse parses a single statement (query, rule, or update-program clause).
func Parse(src string) (ast.Statement, error) {
	stmts, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	switch len(stmts) {
	case 0:
		return nil, &Error{Pos: lex.Pos{Line: 1, Col: 1}, Msg: "empty input"}
	case 1:
		return stmts[0], nil
	default:
		return nil, &Error{Pos: lex.Pos{Line: 1, Col: 1}, Msg: fmt.Sprintf("expected one statement, found %d", len(stmts))}
	}
}

// ParseQuery parses a single query or update request (with or without the
// leading `?`).
func ParseQuery(src string) (*ast.Query, error) {
	src = strings.TrimSpace(src)
	if !strings.HasPrefix(src, "?") {
		src = "?" + src
	}
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	q, ok := st.(*ast.Query)
	if !ok {
		return nil, &Error{Pos: lex.Pos{Line: 1, Col: 1}, Msg: "statement is not a query"}
	}
	return q, nil
}

// ParseRule parses a single view rule `head <- body`.
func ParseRule(src string) (*ast.Rule, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	r, ok := st.(*ast.Rule)
	if !ok {
		return nil, &Error{Pos: lex.Pos{Line: 1, Col: 1}, Msg: "statement is not a rule"}
	}
	return r, nil
}

// ParseClause parses a single update-program clause `head -> body`.
func ParseClause(src string) (*ast.Clause, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, ok := st.(*ast.Clause)
	if !ok {
		return nil, &Error{Pos: lex.Pos{Line: 1, Col: 1}, Msg: "statement is not an update-program clause"}
	}
	return c, nil
}

// ParseProgram parses a `;`-separated sequence of statements.
func ParseProgram(src string) ([]ast.Statement, error) {
	toks := lex.Tokens(src)
	for _, t := range toks {
		if t.Kind == lex.ERROR {
			return nil, &Error{Pos: t.Pos, Msg: t.Text}
		}
	}
	p := &parser{toks: toks}
	var stmts []ast.Statement
	for {
		for p.at(lex.SEMI) {
			p.next()
		}
		if p.at(lex.EOF) {
			return stmts, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		// Tolerate the paper's sentence-final period before a separator.
		if p.at(lex.DOT) && (p.peekKind(1) == lex.SEMI || p.peekKind(1) == lex.EOF) {
			p.next()
		}
		if !p.at(lex.SEMI) && !p.at(lex.EOF) {
			return nil, p.errorf("expected ';' or end of input, found %s", p.cur())
		}
	}
}

func (p *parser) cur() lex.Token { return p.toks[p.pos] }

func (p *parser) at(k lex.Kind) bool { return p.cur().Kind == k }

func (p *parser) peekKind(ahead int) lex.Kind {
	i := p.pos + ahead
	if i >= len(p.toks) {
		return lex.EOF
	}
	return p.toks[i].Kind
}

func (p *parser) next() lex.Token {
	t := p.cur()
	if t.Kind != lex.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k lex.Kind) (lex.Token, error) {
	if !p.at(k) {
		return lex.Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// parseStatement dispatches on the leading token: `?` means query;
// otherwise a tuple expression followed by `<-` (rule) or `->` (clause).
func (p *parser) parseStatement() (ast.Statement, error) {
	if p.at(lex.QUESTION) {
		p.next()
		body, err := p.parseTupleExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Query{Body: body}, nil
	}
	head, err := p.parseTupleExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(lex.LARROW):
		p.next()
		body, err := p.parseTupleExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Rule{Head: head, Body: body}, nil
	case p.at(lex.RARROW):
		p.next()
		body, err := p.parseTupleExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Clause{Head: head, Body: body}, nil
	default:
		return nil, p.errorf("expected '<-' or '->' after head expression, found %s", p.cur())
	}
}

// parseTupleExpr parses a comma-separated conjunct list.
func (p *parser) parseTupleExpr() (*ast.TupleExpr, error) {
	te := &ast.TupleExpr{}
	for {
		c, err := p.parseConjunct()
		if err != nil {
			return nil, err
		}
		te.Conjuncts = append(te.Conjuncts, c)
		if !p.at(lex.COMMA) {
			return te, nil
		}
		p.next()
	}
}

// parseConjunct parses one conjunct: an optionally negated/signed
// attribute expression, or a constraint.
func (p *parser) parseConjunct() (ast.Expr, error) {
	if p.at(lex.NOT) {
		p.next()
		inner, err := p.parseConjunct()
		if err != nil {
			return nil, err
		}
		return &ast.Not{X: inner}, nil
	}
	sign := p.parseSign()
	if p.at(lex.DOT) {
		a, err := p.parseAttrExpr()
		if err != nil {
			return nil, err
		}
		a.Sign = sign
		return a, nil
	}
	if sign != ast.SignNone {
		return nil, p.errorf("expected '.' after update sign, found %s", p.cur())
	}
	// Constraint conjunct: Term Relop Term (footnote 7).
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	op, ok := p.parseRelop()
	if !ok {
		return nil, p.errorf("expected comparison operator in constraint, found %s", p.cur())
	}
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &ast.Constraint{L: l, Op: op, R: r}, nil
}

func (p *parser) parseSign() ast.Sign {
	switch {
	case p.at(lex.PLUS):
		p.next()
		return ast.SignPlus
	case p.at(lex.MINUS):
		p.next()
		return ast.SignMinus
	default:
		return ast.SignNone
	}
}

// parseAttrExpr parses `.name suffix`, where suffix continues the path,
// compares, negates, recurses into a set expression, or is ε.
func (p *parser) parseAttrExpr() (*ast.AttrExpr, error) {
	if _, err := p.expect(lex.DOT); err != nil {
		return nil, err
	}
	name, err := p.parseAttrName()
	if err != nil {
		return nil, err
	}
	suffix, err := p.parseSuffix()
	if err != nil {
		return nil, err
	}
	return &ast.AttrExpr{Name: name, Expr: suffix}, nil
}

func (p *parser) parseAttrName() (ast.Term, error) {
	switch t := p.cur(); t.Kind {
	case lex.IDENT:
		p.next()
		return ast.Const{Value: object.Str(t.Text)}, nil
	case lex.STRING:
		p.next()
		return ast.Const{Value: object.Str(t.Text)}, nil
	case lex.VAR:
		p.next()
		return ast.Var{Name: t.Text}, nil
	case lex.INT:
		// Numeric attribute names arise when data become metadata; keep
		// them as string atoms, matching how the update evaluator names
		// attributes.
		p.next()
		return ast.Const{Value: object.Str(t.Text)}, nil
	default:
		return nil, p.errorf("expected attribute name, found %s", t)
	}
}

// parseSuffix parses what follows an attribute name inside an attribute
// expression.
func (p *parser) parseSuffix() (ast.Expr, error) {
	switch p.cur().Kind {
	case lex.DOT:
		// Path continuation: `.a.b…` — a nested single-conjunct tuple
		// expression. A dot not followed by a name is the paper's
		// sentence-final period; leave it for the statement level.
		switch p.peekKind(1) {
		case lex.IDENT, lex.STRING, lex.VAR, lex.INT:
		default:
			return ast.Epsilon{}, nil
		}
		inner, err := p.parseAttrExpr()
		if err != nil {
			return nil, err
		}
		return &ast.TupleExpr{Conjuncts: []ast.Expr{inner}}, nil
	case lex.NOT:
		p.next()
		inner, err := p.parseSuffix()
		if err != nil {
			return nil, err
		}
		if _, isEps := inner.(ast.Epsilon); isEps {
			return nil, p.errorf("'~' must be followed by an expression")
		}
		return &ast.Not{X: inner}, nil
	case lex.LPAREN:
		return p.parseSetExpr(ast.SignNone)
	case lex.EQ, lex.NE, lex.LT, lex.LE, lex.GT, lex.GE:
		return p.parseAtomic(ast.SignNone)
	case lex.PLUS, lex.MINUS:
		// Signed suffix: `+(…)`, `-(…)`, `+=c`, `-=c`, `-.attr…`.
		return p.parseSignedSuffix()
	default:
		return ast.Epsilon{}, nil
	}
}

func (p *parser) parseSignedSuffix() (ast.Expr, error) {
	sign := p.parseSign()
	switch p.cur().Kind {
	case lex.LPAREN:
		return p.parseSetExpr(sign)
	case lex.EQ:
		return p.parseAtomic(sign)
	case lex.DOT:
		inner, err := p.parseAttrExpr()
		if err != nil {
			return nil, err
		}
		inner.Sign = sign
		return &ast.TupleExpr{Conjuncts: []ast.Expr{inner}}, nil
	default:
		return nil, p.errorf("expected '(', '=' or '.' after update sign, found %s", p.cur())
	}
}

func (p *parser) parseSetExpr(sign ast.Sign) (ast.Expr, error) {
	if _, err := p.expect(lex.LPAREN); err != nil {
		return nil, err
	}
	if p.at(lex.RPAREN) {
		// `()` — exists any element / insert an empty object.
		p.next()
		return &ast.SetExpr{Sign: sign, X: ast.Epsilon{}}, nil
	}
	inner, err := p.parseInnerExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lex.RPAREN); err != nil {
		return nil, err
	}
	return &ast.SetExpr{Sign: sign, X: inner}, nil
}

// parseInnerExpr parses the expression inside parentheses: a conjunct
// list, an atomic comparison, a negation, or a nested set expression.
func (p *parser) parseInnerExpr() (ast.Expr, error) {
	switch p.cur().Kind {
	case lex.EQ, lex.NE, lex.LT, lex.LE, lex.GT, lex.GE:
		return p.parseAtomic(ast.SignNone)
	case lex.LPAREN:
		return p.parseSetExpr(ast.SignNone)
	case lex.NOT:
		switch p.peekKind(1) {
		case lex.EQ, lex.NE, lex.LT, lex.LE, lex.GT, lex.GE, lex.LPAREN:
			// `~=c`, `~(...)`: negate an atomic or set expression.
			p.next()
			inner, err := p.parseInnerExpr()
			if err != nil {
				return nil, err
			}
			return &ast.Not{X: inner}, nil
		default:
			// `~.attr …`: per-conjunct negation inside a conjunct list.
			return p.parseTupleExpr()
		}
	case lex.PLUS, lex.MINUS:
		// Signed forms: `+=c`, `-(…)`, `-.attr`, or a conjunct list
		// starting with a signed conjunct.
		if p.peekKind(1) == lex.DOT {
			return p.parseTupleExpr()
		}
		sign := p.parseSign()
		switch p.cur().Kind {
		case lex.EQ:
			return p.parseAtomic(sign)
		case lex.LPAREN:
			return p.parseSetExpr(sign)
		default:
			return nil, p.errorf("expected '=', '(' or '.' after update sign, found %s", p.cur())
		}
	default:
		return p.parseTupleExpr()
	}
}

func (p *parser) parseRelop() (ast.RelOp, bool) {
	var op ast.RelOp
	switch p.cur().Kind {
	case lex.EQ:
		op = ast.OpEQ
	case lex.NE:
		op = ast.OpNE
	case lex.LT:
		op = ast.OpLT
	case lex.LE:
		op = ast.OpLE
	case lex.GT:
		op = ast.OpGT
	case lex.GE:
		op = ast.OpGE
	default:
		return 0, false
	}
	p.next()
	return op, true
}

func (p *parser) parseAtomic(sign ast.Sign) (ast.Expr, error) {
	op, ok := p.parseRelop()
	if !ok {
		return nil, p.errorf("expected comparison operator, found %s", p.cur())
	}
	// The paper's `.hp-=C` sugar arrives here as `=` after a '-' sign;
	// signed atomics only allow `=` (simple expressions).
	if sign != ast.SignNone && op != ast.OpEQ {
		return nil, p.errorf("update atomic expressions must use '='")
	}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &ast.Atomic{Sign: sign, Op: op, Term: t}, nil
}

// Term parsing with precedence: mul binds tighter than add/sub. A '+' or
// '-' continues the term only when a primary follows — `=C+10` is
// arithmetic while `(.a=B, +.c=5)` starts a new signed conjunct.

func (p *parser) parseTerm() (ast.Term, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op byte
		switch {
		case p.at(lex.PLUS) && p.startsPrimary(1):
			op = '+'
		case p.at(lex.MINUS) && p.startsPrimary(1):
			op = '-'
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = ast.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (ast.Term, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(lex.STAR) {
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = ast.Arith{Op: '*', L: l, R: r}
	}
	return l, nil
}

func (p *parser) startsPrimary(ahead int) bool {
	switch p.peekKind(ahead) {
	case lex.INT, lex.FLOAT, lex.DATE, lex.STRING, lex.IDENT, lex.VAR, lex.LPAREN:
		return true
	default:
		return false
	}
}

func (p *parser) parsePrimary() (ast.Term, error) {
	switch t := p.cur(); t.Kind {
	case lex.INT:
		p.next()
		return ast.Const{Value: object.Int(t.Int)}, nil
	case lex.FLOAT:
		p.next()
		return ast.Const{Value: object.Float(t.Float)}, nil
	case lex.DATE:
		p.next()
		return ast.Const{Value: object.NewDate(t.Year, t.Month, t.Day)}, nil
	case lex.STRING:
		p.next()
		return ast.Const{Value: object.Str(t.Text)}, nil
	case lex.IDENT:
		p.next()
		switch t.Text {
		case "null":
			return ast.Const{Value: object.Null{}}, nil
		case "true":
			return ast.Const{Value: object.Bool(true)}, nil
		case "false":
			return ast.Const{Value: object.Bool(false)}, nil
		}
		return ast.Const{Value: object.Str(t.Text)}, nil
	case lex.VAR:
		p.next()
		return ast.Var{Name: t.Text}, nil
	case lex.MINUS:
		// Unary minus on a numeric literal.
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if c, ok := inner.(ast.Const); ok {
			switch v := c.Value.(type) {
			case object.Int:
				return ast.Const{Value: object.Int(-v)}, nil
			case object.Float:
				return ast.Const{Value: object.Float(-v)}, nil
			}
		}
		return ast.Arith{Op: '-', L: ast.Const{Value: object.Int(0)}, R: inner}, nil
	case lex.LPAREN:
		p.next()
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lex.RPAREN); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errorf("expected a term, found %s", t)
	}
}
