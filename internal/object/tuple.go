package object

import (
	"sort"
	"strings"
)

// Tuple is an ordered collection of attribute/object pairs with unique
// attribute names (paper §3). Insertion order is preserved for
// deterministic iteration and rendering, but equality, hashing and
// comparison are attribute-order insensitive ("the ordering of the
// attributes is immaterial because the attributes are named", §4.2).
//
// The zero value is an empty tuple ready for use. Tuples are mutable;
// Clone produces a deep copy.
type Tuple struct {
	attrs  []string
	values []Object
	index  map[string]int // attr -> position in attrs/values
}

// NewTuple returns an empty tuple.
func NewTuple() *Tuple { return &Tuple{} }

// TupleOf builds a tuple from alternating attribute-name / Object pairs.
// It panics on odd argument counts or non-string names; it is intended for
// tests and literals in examples.
func TupleOf(pairs ...any) *Tuple {
	if len(pairs)%2 != 0 {
		panic("object.TupleOf: odd number of arguments")
	}
	t := NewTuple()
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("object.TupleOf: attribute name must be a string")
		}
		t.Put(name, toObject(pairs[i+1]))
	}
	return t
}

// toObject converts convenient Go values to Objects for literal builders.
func toObject(v any) Object {
	switch x := v.(type) {
	case Object:
		return x
	case nil:
		return Null{}
	case bool:
		return Bool(x)
	case int:
		return Int(x)
	case int64:
		return Int(x)
	case float64:
		return Float(x)
	case string:
		return Str(x)
	default:
		panic("object: cannot convert value to Object")
	}
}

// Len returns the number of attributes.
func (t *Tuple) Len() int { return len(t.attrs) }

// Attrs returns the attribute names in insertion order. The caller must
// not modify the returned slice.
func (t *Tuple) Attrs() []string { return t.attrs }

// SortedAttrs returns the attribute names sorted lexicographically (a new
// slice; safe to modify).
func (t *Tuple) SortedAttrs() []string {
	out := make([]string, len(t.attrs))
	copy(out, t.attrs)
	sort.Strings(out)
	return out
}

// Get returns the object associated with attr, or (nil, false) when the
// attribute is absent.
func (t *Tuple) Get(attr string) (Object, bool) {
	if t.index == nil {
		return nil, false
	}
	i, ok := t.index[attr]
	if !ok {
		return nil, false
	}
	return t.values[i], true
}

// Has reports whether the attribute is present.
func (t *Tuple) Has(attr string) bool {
	_, ok := t.Get(attr)
	return ok
}

// Put associates attr with obj, replacing any existing association and
// otherwise appending the attribute.
func (t *Tuple) Put(attr string, obj Object) {
	if t.index == nil {
		t.index = make(map[string]int)
	}
	if i, ok := t.index[attr]; ok {
		t.values[i] = obj
		return
	}
	t.index[attr] = len(t.attrs)
	t.attrs = append(t.attrs, attr)
	t.values = append(t.values, obj)
}

// Delete removes the attribute and its object, reporting whether it was
// present. Removal preserves the relative order of remaining attributes.
func (t *Tuple) Delete(attr string) bool {
	if t.index == nil {
		return false
	}
	i, ok := t.index[attr]
	if !ok {
		return false
	}
	copy(t.attrs[i:], t.attrs[i+1:])
	copy(t.values[i:], t.values[i+1:])
	t.attrs = t.attrs[:len(t.attrs)-1]
	t.values = t.values[:len(t.values)-1]
	delete(t.index, attr)
	for j := i; j < len(t.attrs); j++ {
		t.index[t.attrs[j]] = j
	}
	return true
}

// Each calls fn for every attribute/object pair in insertion order,
// stopping early if fn returns false.
func (t *Tuple) Each(fn func(attr string, obj Object) bool) {
	for i, a := range t.attrs {
		if !fn(a, t.values[i]) {
			return
		}
	}
}

func (t *Tuple) Kind() Kind { return KindTuple }

// Equal reports value equality: same attribute set, pairwise-equal
// objects, regardless of insertion order.
func (t *Tuple) Equal(o Object) bool {
	other, ok := o.(*Tuple)
	if !ok || t.Len() != other.Len() {
		return false
	}
	for i, a := range t.attrs {
		ov, ok := other.Get(a)
		if !ok || !t.values[i].Equal(ov) {
			return false
		}
	}
	return true
}

// Hash is attribute-order insensitive: it combines per-attribute entry
// hashes commutatively.
func (t *Tuple) Hash() uint64 {
	var acc uint64 = 0x5555aaaa5555aaaa
	for i, a := range t.attrs {
		entry := hashBytes(fnvOffset^0x7777, []byte(a))
		entry = hashUint64(entry, t.values[i].Hash())
		acc += entry // commutative combine
	}
	return hashUint64(fnvOffset^0x8888, acc) ^ uint64(len(t.attrs))
}

// Compare orders tuples by their sorted attribute lists, then by the
// corresponding values. It exists to give sets of tuples a deterministic
// canonical order for rendering and testing.
func (t *Tuple) Compare(o Object) int {
	if c, done := compareRanks(t, o); done {
		return c
	}
	other := o.(*Tuple)
	as, bs := t.SortedAttrs(), other.SortedAttrs()
	for i := 0; i < len(as) && i < len(bs); i++ {
		if c := strings.Compare(as[i], bs[i]); c != 0 {
			return c
		}
		av, _ := t.Get(as[i])
		bv, _ := other.Get(bs[i])
		if c := av.Compare(bv); c != 0 {
			return c
		}
	}
	switch {
	case len(as) < len(bs):
		return -1
	case len(as) > len(bs):
		return 1
	default:
		return 0
	}
}

// Clone returns a deep copy of the tuple.
func (t *Tuple) Clone() Object {
	c := &Tuple{
		attrs:  make([]string, len(t.attrs)),
		values: make([]Object, len(t.values)),
		index:  make(map[string]int, len(t.index)),
	}
	copy(c.attrs, t.attrs)
	for i, v := range t.values {
		c.values[i] = v.Clone()
	}
	for k, v := range t.index {
		c.index[k] = v
	}
	return c
}

// String renders the tuple as (attr1:val1, attr2:val2, …) in insertion
// order.
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range t.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a)
		b.WriteByte(':')
		b.WriteString(t.values[i].String())
	}
	b.WriteByte(')')
	return b.String()
}

// CanonicalString renders the tuple with attributes in sorted order, for
// deterministic test assertions.
func (t *Tuple) CanonicalString() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range t.SortedAttrs() {
		if i > 0 {
			b.WriteString(", ")
		}
		v, _ := t.Get(a)
		b.WriteString(a)
		b.WriteByte(':')
		b.WriteString(canonicalString(v))
	}
	b.WriteByte(')')
	return b.String()
}

func canonicalString(o Object) string {
	switch v := o.(type) {
	case *Tuple:
		return v.CanonicalString()
	case *Set:
		return v.CanonicalString()
	default:
		return o.String()
	}
}
