package object

import (
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", KindDate: "date",
		KindTuple: "tuple", KindSet: "set", Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindIsAtomic(t *testing.T) {
	for _, k := range []Kind{KindNull, KindBool, KindInt, KindFloat, KindString, KindDate} {
		if !k.IsAtomic() {
			t.Errorf("%v should be atomic", k)
		}
	}
	for _, k := range []Kind{KindTuple, KindSet} {
		if k.IsAtomic() {
			t.Errorf("%v should not be atomic", k)
		}
	}
}

func TestAtomEquality(t *testing.T) {
	cases := []struct {
		a, b Object
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1.0), true},
		{Float(1.0), Int(1), true},
		{Float(1.5), Int(1), false},
		{Str("hp"), Str("hp"), true},
		{Str("hp"), Str("ibm"), false},
		{Str("1"), Int(1), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Bool(true), Int(1), false},
		{Null{}, Null{}, true},
		{Null{}, Int(0), false},
		{NewDate(85, 3, 3), NewDate(85, 3, 3), true},
		{NewDate(85, 3, 3), NewDate(85, 3, 4), false},
		{NewDate(1985, 3, 3), NewDate(85, 3, 3), true}, // 2-digit year normalization
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("symmetry: %v.Equal(%v) = %v, want %v", c.b, c.a, got, c.want)
		}
		if c.want && c.a.Hash() != c.b.Hash() {
			t.Errorf("equal objects %v and %v have different hashes", c.a, c.b)
		}
	}
}

func TestAtomCompare(t *testing.T) {
	cases := []struct {
		a, b Object
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(1), Float(1.5), -1},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{NewDate(85, 3, 3), NewDate(85, 3, 4), -1},
		{NewDate(85, 4, 1), NewDate(85, 3, 30), 1},
		{NewDate(86, 1, 1), NewDate(85, 12, 31), 1},
		{Bool(false), Bool(true), -1},
		{Null{}, Int(0), -1},   // null sorts before everything
		{Int(5), Str("a"), -1}, // numeric rank < string rank
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("antisymmetry: %v.Compare(%v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestComparable(t *testing.T) {
	cases := []struct {
		a, b Object
		want bool
	}{
		{Int(1), Float(2), true},
		{Str("a"), Str("b"), true},
		{NewDate(85, 1, 1), NewDate(86, 1, 1), true},
		{Int(1), Str("a"), false},
		{Null{}, Null{}, false},
		{Int(1), nil, false},
		{NewTuple(), NewTuple(), false},
	}
	for _, c := range cases {
		if got := Comparable(c.a, c.b); got != c.want {
			t.Errorf("Comparable(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAtomString(t *testing.T) {
	cases := []struct {
		o    Object
		want string
	}{
		{Null{}, "null"},
		{Bool(true), "true"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Float(50), "50.0"},
		{Str("hp"), "hp"},
		{Str("Has Cap"), `"Has Cap"`},
		{Str("null"), `"null"`},
		{Str("9lives"), `"9lives"`},
		{Str(""), `""`},
		{NewDate(85, 3, 3), "3/3/85"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.o, got, c.want)
		}
	}
}

func TestIntFloatHashAgreement(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 50, 200, math.MaxInt32} {
		if Int(n).Hash() != Float(float64(n)).Hash() {
			t.Errorf("Int(%d) and Float(%d) hash differently", n, n)
		}
	}
}

func TestTupleBasics(t *testing.T) {
	tp := NewTuple()
	if tp.Len() != 0 {
		t.Fatalf("empty tuple Len = %d", tp.Len())
	}
	tp.Put("date", NewDate(85, 3, 3))
	tp.Put("stkCode", Str("hp"))
	tp.Put("clsPrice", Int(50))
	if tp.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tp.Len())
	}
	v, ok := tp.Get("stkCode")
	if !ok || !v.Equal(Str("hp")) {
		t.Fatalf("Get(stkCode) = %v, %v", v, ok)
	}
	if _, ok := tp.Get("missing"); ok {
		t.Fatal("Get(missing) should report absent")
	}
	// Put replaces in place without reordering.
	tp.Put("stkCode", Str("ibm"))
	if got := tp.Attrs()[1]; got != "stkCode" {
		t.Fatalf("replace moved attribute: attrs = %v", tp.Attrs())
	}
	v, _ = tp.Get("stkCode")
	if !v.Equal(Str("ibm")) {
		t.Fatalf("after replace Get = %v", v)
	}
	if !tp.Delete("date") {
		t.Fatal("Delete(date) = false")
	}
	if tp.Delete("date") {
		t.Fatal("second Delete(date) = true")
	}
	if tp.Has("date") || tp.Len() != 2 {
		t.Fatalf("after delete: has=%v len=%d", tp.Has("date"), tp.Len())
	}
	// Index stays consistent after deletion.
	v, ok = tp.Get("clsPrice")
	if !ok || !v.Equal(Int(50)) {
		t.Fatalf("Get(clsPrice) after delete = %v, %v", v, ok)
	}
}

func TestTupleEqualityOrderInsensitive(t *testing.T) {
	a := TupleOf("x", 1, "y", 2)
	b := TupleOf("y", 2, "x", 1)
	if !a.Equal(b) {
		t.Error("tuples differing only in attribute order should be equal")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal tuples should hash equally")
	}
	c := TupleOf("x", 1, "y", 3)
	if a.Equal(c) {
		t.Error("tuples with different values should differ")
	}
	d := TupleOf("x", 1)
	if a.Equal(d) || d.Equal(a) {
		t.Error("tuples with different arity should differ")
	}
}

func TestTupleCompareCanonical(t *testing.T) {
	a := TupleOf("x", 1, "y", 2)
	b := TupleOf("y", 2, "x", 1)
	if a.Compare(b) != 0 {
		t.Error("order-insensitive equal tuples should compare 0")
	}
	c := TupleOf("x", 1, "y", 3)
	if a.Compare(c) >= 0 {
		t.Error("a should sort before c")
	}
	d := TupleOf("x", 1)
	if d.Compare(a) >= 0 {
		t.Error("shorter prefix tuple should sort first")
	}
}

func TestTupleClone(t *testing.T) {
	inner := SetOf(1, 2)
	a := NewTuple()
	a.Put("s", inner)
	c := a.Clone().(*Tuple)
	if !a.Equal(c) {
		t.Fatal("clone should be equal")
	}
	got, _ := c.Get("s")
	got.(*Set).Add(Int(3))
	if inner.Len() != 2 {
		t.Error("mutating clone affected original (shallow copy)")
	}
}

func TestTupleEachEarlyStop(t *testing.T) {
	tp := TupleOf("a", 1, "b", 2, "c", 3)
	var seen []string
	tp.Each(func(attr string, _ Object) bool {
		seen = append(seen, attr)
		return len(seen) < 2
	})
	if len(seen) != 2 {
		t.Errorf("early stop visited %v", seen)
	}
}

func TestTupleOfPanics(t *testing.T) {
	assertPanics(t, func() { TupleOf("odd") })
	assertPanics(t, func() { TupleOf(1, 2) })
	assertPanics(t, func() { TupleOf("a", struct{}{}) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if s.Len() != 0 || s.Contains(Int(1)) {
		t.Fatal("empty set misbehaves")
	}
	if !s.Add(Int(1)) || !s.Add(Int(2)) {
		t.Fatal("Add of new elements should return true")
	}
	if s.Add(Int(1)) {
		t.Fatal("duplicate Add should return false")
	}
	if s.Add(Float(2.0)) {
		t.Fatal("Float(2) duplicates Int(2) under value equality")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Remove(Int(1)) || s.Remove(Int(1)) {
		t.Fatal("Remove semantics broken")
	}
	if s.Len() != 1 || s.Contains(Int(1)) {
		t.Fatal("state after Remove wrong")
	}
}

func TestSetHeterogeneous(t *testing.T) {
	s := SetOf(1, "a", 2.5, TupleOf("x", 1))
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(TupleOf("x", 1)) {
		t.Error("structural membership failed")
	}
}

func TestSetRemoveWhere(t *testing.T) {
	s := SetOf(1, 2, 3, 4, 5)
	removed := s.RemoveWhere(func(o Object) bool {
		n, ok := o.(Int)
		return ok && n%2 == 0
	})
	if len(removed) != 2 || s.Len() != 3 {
		t.Fatalf("removed %v, remaining %d", removed, s.Len())
	}
	if s.Contains(Int(2)) || s.Contains(Int(4)) {
		t.Error("even elements should be gone")
	}
}

func TestSetCompaction(t *testing.T) {
	s := NewSet()
	const n = 200
	for i := 0; i < n; i++ {
		s.Add(Int(i))
	}
	for i := 0; i < n; i += 2 {
		s.Remove(Int(i))
	}
	if s.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", s.Len(), n/2)
	}
	for i := 1; i < n; i += 2 {
		if !s.Contains(Int(i)) {
			t.Fatalf("lost element %d after compaction", i)
		}
	}
	for i := 0; i < n; i += 2 {
		if s.Contains(Int(i)) {
			t.Fatalf("element %d should be removed", i)
		}
	}
}

func TestSetEqualityOrderInsensitive(t *testing.T) {
	a := SetOf(1, 2, 3)
	b := SetOf(3, 2, 1)
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Error("sets differing only in insertion order should be equal with equal hashes")
	}
	c := SetOf(1, 2)
	if a.Equal(c) {
		t.Error("sets of different cardinality should differ")
	}
	d := SetOf(1, 2, 4)
	if a.Equal(d) {
		t.Error("sets with different elements should differ")
	}
}

func TestSetClone(t *testing.T) {
	inner := TupleOf("x", 1)
	s := NewSet()
	s.Add(inner)
	c := s.Clone().(*Set)
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(Int(7))
	if s.Len() != 1 {
		t.Error("mutating clone affected original")
	}
}

func TestSetSortedElemsDeterministic(t *testing.T) {
	a := SetOf(3, 1, 2)
	b := SetOf(2, 3, 1)
	as, bs := a.SortedElems(), b.SortedElems()
	for i := range as {
		if !as[i].Equal(bs[i]) {
			t.Fatalf("sorted element order differs at %d: %v vs %v", i, as[i], bs[i])
		}
	}
	if a.CanonicalString() != "{1, 2, 3}" {
		t.Errorf("CanonicalString = %q", a.CanonicalString())
	}
}

func TestNestedCanonicalString(t *testing.T) {
	u := TupleOf("db", TupleOf("r", SetOf(TupleOf("b", 2, "a", 1))))
	want := "(db:(r:{(a:1, b:2)}))"
	if got := u.CanonicalString(); got != want {
		t.Errorf("CanonicalString = %q, want %q", got, want)
	}
}

func TestSetString(t *testing.T) {
	s := SetOf(1, 2)
	if got := s.String(); got != "{1, 2}" {
		t.Errorf("String = %q", got)
	}
	tp := TupleOf("name", "john", "sal", 10)
	if got := tp.String(); got != "(name:john, sal:10)" {
		t.Errorf("String = %q", got)
	}
}
