package object

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomObject generates an arbitrary object of bounded depth for
// property-based testing.
func randomObject(r *rand.Rand, depth int) Object {
	max := 8
	if depth <= 0 {
		max = 6 // atoms only
	}
	switch r.Intn(max) {
	case 0:
		return Null{}
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Intn(200) - 100)
	case 3:
		return Float(float64(r.Intn(400))/4 - 50)
	case 4:
		letters := []string{"hp", "ibm", "sun", "dec", "date", "x", "y", ""}
		return Str(letters[r.Intn(len(letters))])
	case 5:
		return NewDate(85+r.Intn(3), 1+r.Intn(12), 1+r.Intn(28))
	case 6:
		t := NewTuple()
		attrs := []string{"a", "b", "c", "d"}
		for i := 0; i < r.Intn(4); i++ {
			t.Put(attrs[r.Intn(len(attrs))], randomObject(r, depth-1))
		}
		return t
	default:
		s := NewSet()
		for i := 0; i < r.Intn(5); i++ {
			s.Add(randomObject(r, depth-1))
		}
		return s
	}
}

// objValue wraps an Object to satisfy quick.Generator.
type objValue struct{ O Object }

func (objValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(objValue{randomObject(r, 3)})
}

var quickCfg = &quick.Config{MaxCount: 300}

func TestPropEqualReflexive(t *testing.T) {
	f := func(v objValue) bool { return v.O.Equal(v.O) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropEqualImpliesHashEqual(t *testing.T) {
	f := func(a, b objValue) bool {
		if a.O.Equal(b.O) {
			return a.O.Hash() == b.O.Hash()
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropEqualSymmetric(t *testing.T) {
	f := func(a, b objValue) bool { return a.O.Equal(b.O) == b.O.Equal(a.O) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(a, b objValue) bool { return a.O.Compare(b.O) == -b.O.Compare(a.O) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropCompareConsistentWithEqualForAtoms(t *testing.T) {
	// For comparable atoms, Compare == 0 iff Equal. (Aggregates use
	// canonical order where 0 also implies structural equality, but
	// cross-kind rank ties never occur.)
	f := func(a, b objValue) bool {
		if !a.O.Kind().IsAtomic() || !b.O.Kind().IsAtomic() {
			return true
		}
		if a.O.Equal(b.O) {
			return a.O.Compare(b.O) == 0
		}
		if kindRank(a.O.Kind()) == kindRank(b.O.Kind()) && a.O.Kind() != KindNull {
			return a.O.Compare(b.O) != 0
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropCloneEqual(t *testing.T) {
	f := func(v objValue) bool {
		c := v.O.Clone()
		return v.O.Equal(c) && c.Equal(v.O) && v.O.Hash() == c.Hash()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropSetAddIdempotent(t *testing.T) {
	f := func(vs []objValue) bool {
		s := NewSet()
		for _, v := range vs {
			s.Add(v.O)
		}
		n := s.Len()
		for _, v := range vs {
			if s.Add(v.O) {
				return false // re-adding must not change the set
			}
		}
		return s.Len() == n
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropSetAddRemoveInverse(t *testing.T) {
	f := func(vs []objValue, extra objValue) bool {
		s := NewSet()
		for _, v := range vs {
			s.Add(v.O)
		}
		had := s.Contains(extra.O)
		s.Add(extra.O)
		if !s.Contains(extra.O) {
			return false
		}
		s.Remove(extra.O)
		if s.Contains(extra.O) {
			return false
		}
		_ = had
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJSONRoundTrip(t *testing.T) {
	f := func(v objValue) bool {
		data, err := MarshalJSON(v.O)
		if err != nil {
			return false
		}
		back, err := UnmarshalJSON(data)
		if err != nil {
			return false
		}
		return v.O.Equal(back)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropTupleDeleteRemovesOnlyTarget(t *testing.T) {
	f := func(v objValue) bool {
		tup, ok := v.O.(*Tuple)
		if !ok || tup.Len() == 0 {
			return true
		}
		attrs := append([]string(nil), tup.Attrs()...)
		victim := attrs[len(attrs)/2]
		before := map[string]Object{}
		tup.Each(func(a string, o Object) bool { before[a] = o; return true })
		tup.Delete(victim)
		if tup.Has(victim) {
			return false
		}
		for a, o := range before {
			if a == victim {
				continue
			}
			got, ok := tup.Get(a)
			if !ok || !got.Equal(o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTripExplicit(t *testing.T) {
	objs := []Object{
		Null{},
		Bool(true),
		Int(-42),
		Int(1 << 60), // beyond float53: the string encoding must preserve it
		Float(2.5),
		Str("hello world"),
		NewDate(85, 3, 3),
		TupleOf("date", NewDate(85, 3, 3), "stkCode", "hp", "clsPrice", 50),
		SetOf(TupleOf("a", 1), TupleOf("a", 1, "b", 2), "str", 7),
		NewSet(),
		NewTuple(),
	}
	for _, o := range objs {
		data, err := MarshalJSON(o)
		if err != nil {
			t.Fatalf("marshal %v: %v", o, err)
		}
		back, err := UnmarshalJSON(data)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !o.Equal(back) {
			t.Errorf("round-trip changed %v into %v", o, back)
		}
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	bad := []string{
		``,
		`{"k":"mystery"}`,
		`{"k":"int","v":"notanumber"}`,
		`{"k":"tup","a":["x"],"t":[]}`,
		`{"k":"bool","v":"nope"}`,
	}
	for _, s := range bad {
		if _, err := UnmarshalJSON([]byte(s)); err == nil {
			t.Errorf("UnmarshalJSON(%q) should fail", s)
		}
	}
}
