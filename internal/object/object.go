// Package object implements the nested value model of IDL (paper §3):
// every object is an atom, a tuple of named objects, or a set of objects.
//
// The universe of databases is itself a tuple: each attribute names a
// database, each database is a tuple of named relations, each relation is a
// set of tuples. Objects are value-based (no object identity, paper §3),
// sets may contain heterogeneous elements, and tuples may have varying
// arity within one relation — both are deliberate departures from the flat
// relational model that the paper calls out.
package object

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the concrete type of an Object.
type Kind uint8

// The object kinds. Null through Date are atomic; Tuple and Set are the
// aggregate kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
	KindTuple
	KindSet
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	case KindTuple:
		return "tuple"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsAtomic reports whether the kind is one of the atomic kinds (including
// null, the paper's "null atomic object").
func (k Kind) IsAtomic() bool { return k <= KindDate }

// Object is the value interface shared by atoms, tuples, and sets.
//
// Equality is value-based and numeric-tolerant: Int(1) equals Float(1).
// Hash is consistent with Equal. Compare provides a total order used for
// the language's inequality operators and for canonical (deterministic)
// rendering of sets; atoms of incomparable kinds order by kind.
type Object interface {
	// Kind returns the object's kind tag.
	Kind() Kind
	// Equal reports value equality with another object.
	Equal(Object) bool
	// Hash returns a hash consistent with Equal.
	Hash() uint64
	// Compare returns -1, 0, or +1 ordering this object against other.
	// The order is total: atoms order numerically/lexically within
	// comparable kinds, then by kind tag; aggregates order structurally.
	Compare(other Object) int
	// Clone returns a deep copy. Atoms are immutable and return
	// themselves.
	Clone() Object
	// String renders the object in IDL surface syntax.
	String() string
}

// ---------------------------------------------------------------------------
// Atoms

// Null is the null atomic object. Per the paper's simplifying assumption
// (§5.2) a null value satisfies no atomic expression.
type Null struct{}

// Bool is a boolean atom. The paper does not use booleans directly but the
// evaluator produces them for variable-free queries.
type Bool bool

// Int is a 64-bit integer atom.
type Int int64

// Float is a 64-bit floating point atom.
type Float float64

// String is a string atom. Attribute names, relation names and database
// names — the metadata that higher-order variables range over — are String
// atoms when reified as data.
type Str string

// Date is a calendar date atom (no time zone, no time of day), matching the
// paper's 3/3/85 literals.
type Date struct {
	Year  int
	Month int
	Day   int
}

// NewDate builds a Date, normalizing two-digit years the way the paper's
// examples write them (85 ⇒ 1985).
func NewDate(year, month, day int) Date {
	if year < 100 {
		year += 1900
	}
	return Date{Year: year, Month: month, Day: day}
}

// ordinal maps the date to a single comparable integer (days are not
// validated against month lengths; ordering only needs monotonicity).
func (d Date) ordinal() int64 {
	return int64(d.Year)*512 + int64(d.Month)*32 + int64(d.Day)
}

func (Null) Kind() Kind  { return KindNull }
func (Bool) Kind() Kind  { return KindBool }
func (Int) Kind() Kind   { return KindInt }
func (Float) Kind() Kind { return KindFloat }
func (Str) Kind() Kind   { return KindString }
func (Date) Kind() Kind  { return KindDate }

func (n Null) Clone() Object  { return n }
func (b Bool) Clone() Object  { return b }
func (i Int) Clone() Object   { return i }
func (f Float) Clone() Object { return f }
func (s Str) Clone() Object   { return s }
func (d Date) Clone() Object  { return d }

func (Null) String() string   { return "null" }
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }
func (i Int) String() string  { return strconv.FormatInt(int64(i), 10) }

func (f Float) String() string {
	s := strconv.FormatFloat(float64(f), 'g', -1, 64)
	// Keep a trailing ".0" on integral floats so the rendering is
	// unambiguous about the atom's kind.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (s Str) String() string {
	if isBareword(string(s)) {
		return string(s)
	}
	return strconv.Quote(string(s))
}

func (d Date) String() string {
	return fmt.Sprintf("%d/%d/%d", d.Month, d.Day, d.Year%100)
}

// isBareword reports whether s can be rendered without quotes in IDL
// surface syntax: a letter or underscore followed by letters, digits or
// underscores, and not starting with an upper-case letter (which would
// parse as a variable).
func isBareword(s string) bool {
	if s == "" || s == "null" || s == "true" || s == "false" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z'):
		case r >= 'A' && r <= 'Z':
			if i == 0 {
				return false
			}
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// numericValue returns the float value of a numeric atom.
func numericValue(o Object) (float64, bool) {
	switch v := o.(type) {
	case Int:
		return float64(v), true
	case Float:
		return float64(v), true
	}
	return 0, false
}

// Equal implementations. Numeric atoms compare across Int/Float.

func (Null) Equal(o Object) bool { _, ok := o.(Null); return ok }

func (b Bool) Equal(o Object) bool {
	other, ok := o.(Bool)
	return ok && b == other
}

func (i Int) Equal(o Object) bool {
	switch v := o.(type) {
	case Int:
		return i == v
	case Float:
		return float64(i) == float64(v)
	}
	return false
}

func (f Float) Equal(o Object) bool {
	switch v := o.(type) {
	case Int:
		return float64(f) == float64(v)
	case Float:
		return f == v
	}
	return false
}

func (s Str) Equal(o Object) bool {
	other, ok := o.(Str)
	return ok && s == other
}

func (d Date) Equal(o Object) bool {
	other, ok := o.(Date)
	return ok && d == other
}

// Hash implementations (FNV-1a over a kind tag and payload). Int and Float
// must hash identically when Equal, so integral floats hash as ints.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func (Null) Hash() uint64 { return hashUint64(fnvOffset, 0x9e3779b97f4a7c15) }

func (b Bool) Hash() uint64 {
	v := uint64(2)
	if b {
		v = 3
	}
	return hashUint64(fnvOffset, v)
}

func (i Int) Hash() uint64 { return hashUint64(fnvOffset^0x1111, uint64(int64(i))) }

func (f Float) Hash() uint64 {
	// Integral floats hash like the corresponding Int so that
	// Equal(Int(1), Float(1)) implies equal hashes.
	if fv := float64(f); fv == math.Trunc(fv) && fv >= math.MinInt64 && fv < math.MaxInt64 {
		return Int(int64(fv)).Hash()
	}
	return hashUint64(fnvOffset^0x2222, math.Float64bits(float64(f)))
}

func (s Str) Hash() uint64 { return hashBytes(fnvOffset^0x3333, []byte(s)) }

func (d Date) Hash() uint64 { return hashUint64(fnvOffset^0x4444, uint64(d.ordinal())) }

// kindRank orders kinds for cross-kind comparison. Numeric kinds share a
// rank because they compare numerically.
func kindRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	case KindDate:
		return 4
	case KindTuple:
		return 5
	case KindSet:
		return 6
	}
	return 7
}

func compareRanks(a, b Object) (int, bool) {
	ra, rb := kindRank(a.Kind()), kindRank(b.Kind())
	if ra != rb {
		if ra < rb {
			return -1, true
		}
		return 1, true
	}
	return 0, false
}

func (Null) Compare(o Object) int {
	if c, done := compareRanks(Null{}, o); done {
		return c
	}
	return 0
}

func (b Bool) Compare(o Object) int {
	if c, done := compareRanks(b, o); done {
		return c
	}
	other := o.(Bool)
	switch {
	case b == other:
		return 0
	case !bool(b):
		return -1
	default:
		return 1
	}
}

func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func (i Int) Compare(o Object) int {
	if c, done := compareRanks(i, o); done {
		return c
	}
	v, _ := numericValue(o)
	return compareFloats(float64(i), v)
}

func (f Float) Compare(o Object) int {
	if c, done := compareRanks(f, o); done {
		return c
	}
	v, _ := numericValue(o)
	return compareFloats(float64(f), v)
}

func (s Str) Compare(o Object) int {
	if c, done := compareRanks(s, o); done {
		return c
	}
	return strings.Compare(string(s), string(o.(Str)))
}

func (d Date) Compare(o Object) int {
	if c, done := compareRanks(d, o); done {
		return c
	}
	other := o.(Date)
	switch {
	case d.ordinal() < other.ordinal():
		return -1
	case d.ordinal() > other.ordinal():
		return 1
	default:
		return 0
	}
}

// Comparable reports whether the two objects can meaningfully be compared
// with an inequality operator (<, ≤, >, ≥): both numeric, both strings,
// both dates, or both bools. Equality and inequality (=, ≠) are defined on
// every pair of objects.
func Comparable(a, b Object) bool {
	if a == nil || b == nil {
		return false
	}
	ra, rb := kindRank(a.Kind()), kindRank(b.Kind())
	return ra == rb && ra >= 1 && ra <= 4
}
