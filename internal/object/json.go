package object

import (
	"encoding/json"
	"fmt"
)

// The JSON encoding of objects is a tagged representation that
// round-trips every kind unambiguously; it backs storage snapshots
// (internal/storage) and the CLI's dump/load commands.
//
//	null            → {"k":"null"}
//	Bool(true)      → {"k":"bool","v":true}
//	Int(5)          → {"k":"int","v":"5"}          (string: avoids float53 loss)
//	Float(2.5)      → {"k":"float","v":2.5}
//	Str("hp")       → {"k":"str","v":"hp"}
//	Date(1985,3,3)  → {"k":"date","y":1985,"m":3,"d":3}
//	Tuple           → {"k":"tup","a":["date",…],"v":[…]}
//	Set             → {"k":"set","v":[…]}

type jsonObject struct {
	K string            `json:"k"`
	V json.RawMessage   `json:"v,omitempty"`
	A []string          `json:"a,omitempty"`
	T []json.RawMessage `json:"t,omitempty"`
	Y int               `json:"y,omitempty"`
	M int               `json:"m,omitempty"`
	D int               `json:"d,omitempty"`
}

// MarshalJSON encodes any Object in the tagged representation.
func MarshalJSON(o Object) ([]byte, error) {
	switch v := o.(type) {
	case Null:
		return json.Marshal(jsonObject{K: "null"})
	case Bool:
		raw, _ := json.Marshal(bool(v))
		return json.Marshal(jsonObject{K: "bool", V: raw})
	case Int:
		raw, _ := json.Marshal(fmt.Sprintf("%d", int64(v)))
		return json.Marshal(jsonObject{K: "int", V: raw})
	case Float:
		raw, err := json.Marshal(float64(v))
		if err != nil {
			return nil, err
		}
		return json.Marshal(jsonObject{K: "float", V: raw})
	case Str:
		raw, _ := json.Marshal(string(v))
		return json.Marshal(jsonObject{K: "str", V: raw})
	case Date:
		return json.Marshal(jsonObject{K: "date", Y: v.Year, M: v.Month, D: v.Day})
	case *Tuple:
		enc := jsonObject{K: "tup", A: v.Attrs()}
		for _, a := range v.Attrs() {
			val, _ := v.Get(a)
			raw, err := MarshalJSON(val)
			if err != nil {
				return nil, err
			}
			enc.T = append(enc.T, raw)
		}
		return json.Marshal(enc)
	case *Set:
		enc := jsonObject{K: "set"}
		var err error
		v.Each(func(e Object) bool {
			var raw []byte
			raw, err = MarshalJSON(e)
			if err != nil {
				return false
			}
			enc.T = append(enc.T, raw)
			return true
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(enc)
	default:
		return nil, fmt.Errorf("object: cannot marshal %T", o)
	}
}

// UnmarshalJSON decodes an Object from the tagged representation.
func UnmarshalJSON(data []byte) (Object, error) {
	var enc jsonObject
	if err := json.Unmarshal(data, &enc); err != nil {
		return nil, err
	}
	switch enc.K {
	case "null":
		return Null{}, nil
	case "bool":
		var b bool
		if err := json.Unmarshal(enc.V, &b); err != nil {
			return nil, err
		}
		return Bool(b), nil
	case "int":
		var s string
		if err := json.Unmarshal(enc.V, &s); err != nil {
			return nil, err
		}
		var n int64
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
			return nil, fmt.Errorf("object: bad int payload %q", s)
		}
		return Int(n), nil
	case "float":
		var f float64
		if err := json.Unmarshal(enc.V, &f); err != nil {
			return nil, err
		}
		return Float(f), nil
	case "str":
		var s string
		if err := json.Unmarshal(enc.V, &s); err != nil {
			return nil, err
		}
		return Str(s), nil
	case "date":
		return Date{Year: enc.Y, Month: enc.M, Day: enc.D}, nil
	case "tup":
		if len(enc.A) != len(enc.T) {
			return nil, fmt.Errorf("object: tuple attr/value length mismatch (%d vs %d)", len(enc.A), len(enc.T))
		}
		t := NewTuple()
		for i, a := range enc.A {
			v, err := UnmarshalJSON(enc.T[i])
			if err != nil {
				return nil, err
			}
			t.Put(a, v)
		}
		return t, nil
	case "set":
		s := NewSet()
		for _, raw := range enc.T {
			v, err := UnmarshalJSON(raw)
			if err != nil {
				return nil, err
			}
			s.Add(v)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("object: unknown kind tag %q", enc.K)
	}
}
