package object

import (
	"sort"
	"strings"
)

// Set is a value-based collection of objects with set semantics: adding an
// element equal to an existing one is a no-op. Elements may be
// heterogeneous (paper §3) — a relation is a Set of Tuples, but nothing
// restricts element kinds or tuple arities.
//
// Internally the set keeps an insertion-order slice for deterministic
// iteration plus a hash index (hash → element positions) for O(1)
// membership tests; relations of hundreds of thousands of tuples are the
// expected scale.
//
// The zero value is an empty set ready for use.
type Set struct {
	elems   []Object
	index   map[uint64][]int // element hash -> positions in elems
	holes   int              // count of nil (removed) slots in elems
	version uint64           // bumped on every content change
}

// Version returns a counter that increases on every content change. Query
// engines use it to invalidate per-set caches (e.g. attribute indexes).
// Note: in-place mutation of an element does not bump the version — the
// update evaluator must remove, mutate, and re-add elements, which both
// keeps hashes coherent and bumps the version.
func (s *Set) Version() uint64 { return s.version }

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// SetOf builds a set from the given values (converted like TupleOf).
func SetOf(values ...any) *Set {
	s := NewSet()
	for _, v := range values {
		s.Add(toObject(v))
	}
	return s
}

// Len returns the number of elements.
func (s *Set) Len() int { return len(s.elems) - s.holes }

// Contains reports whether an element equal to obj is present.
func (s *Set) Contains(obj Object) bool {
	_, ok := s.find(obj)
	return ok
}

func (s *Set) find(obj Object) (int, bool) {
	if s.index == nil {
		return 0, false
	}
	for _, i := range s.index[obj.Hash()] {
		if s.elems[i] != nil && s.elems[i].Equal(obj) {
			return i, true
		}
	}
	return 0, false
}

// Add inserts obj unless an equal element already exists, reporting
// whether the set changed.
func (s *Set) Add(obj Object) bool {
	if s.Contains(obj) {
		return false
	}
	if s.index == nil {
		s.index = make(map[uint64][]int)
	}
	h := obj.Hash()
	s.index[h] = append(s.index[h], len(s.elems))
	s.elems = append(s.elems, obj)
	s.version++
	return true
}

// Remove deletes the element equal to obj, reporting whether the set
// changed. Removal leaves a hole to keep positions stable; holes are
// compacted once they dominate the slice.
func (s *Set) Remove(obj Object) bool {
	i, ok := s.find(obj)
	if !ok {
		return false
	}
	s.removeAt(i, obj.Hash())
	return true
}

func (s *Set) removeAt(i int, hash uint64) {
	bucket := s.index[hash]
	for j, p := range bucket {
		if p == i {
			bucket[j] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.index, hash)
	} else {
		s.index[hash] = bucket
	}
	s.elems[i] = nil
	s.holes++
	s.version++
	if s.holes > len(s.elems)/2 && s.holes > 16 {
		s.compact()
	}
}

// RemoveWhere deletes every element for which pred returns true and
// returns the removed elements in iteration order.
func (s *Set) RemoveWhere(pred func(Object) bool) []Object {
	var removed []Object
	for i, e := range s.elems {
		if e == nil || !pred(e) {
			continue
		}
		removed = append(removed, e)
		s.removeAt(i, e.Hash())
	}
	return removed
}

func (s *Set) compact() {
	elems := make([]Object, 0, s.Len())
	for _, e := range s.elems {
		if e != nil {
			elems = append(elems, e)
		}
	}
	s.elems = elems
	s.holes = 0
	s.index = make(map[uint64][]int, len(elems))
	for i, e := range elems {
		h := e.Hash()
		s.index[h] = append(s.index[h], i)
	}
}

// Each calls fn for every element in insertion order, stopping early if fn
// returns false. fn must not mutate the set (use Elems for a stable
// snapshot if mutation during iteration is needed).
func (s *Set) Each(fn func(Object) bool) {
	for _, e := range s.elems {
		if e == nil {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// Elems returns a snapshot slice of the elements in insertion order.
func (s *Set) Elems() []Object {
	out := make([]Object, 0, s.Len())
	for _, e := range s.elems {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// SampleN returns up to n elements in insertion order — a deterministic
// prefix sample for statistics estimation. The same content in the same
// insertion order always yields the same sample.
func (s *Set) SampleN(n int) []Object {
	if n <= 0 {
		return nil
	}
	out := make([]Object, 0, n)
	for _, e := range s.elems {
		if e == nil {
			continue
		}
		out = append(out, e)
		if len(out) == n {
			break
		}
	}
	return out
}

// SortedElems returns the elements in canonical (Compare) order.
func (s *Set) SortedElems() []Object {
	out := s.Elems()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func (s *Set) Kind() Kind { return KindSet }

// Equal reports value equality: same cardinality and mutual containment.
func (s *Set) Equal(o Object) bool {
	other, ok := o.(*Set)
	if !ok || s.Len() != other.Len() {
		return false
	}
	eq := true
	s.Each(func(e Object) bool {
		if !other.Contains(e) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Hash combines element hashes commutatively so it is insertion-order
// insensitive.
func (s *Set) Hash() uint64 {
	var acc uint64 = 0x0f0f0f0f0f0f0f0f
	s.Each(func(e Object) bool {
		acc += e.Hash()
		return true
	})
	return hashUint64(fnvOffset^0x9999, acc) ^ uint64(s.Len())
}

// Compare orders sets by cardinality, then element-wise in canonical
// order. Used only for deterministic rendering.
func (s *Set) Compare(o Object) int {
	if c, done := compareRanks(s, o); done {
		return c
	}
	other := o.(*Set)
	a, b := s.SortedElems(), other.SortedElems()
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// ShallowClone returns a structural copy of the set that shares the
// element objects: the element slice, hash index and version are copied
// so the clone can be mutated (Add/Remove) without disturbing the
// original, but the elements themselves are the same pointers. This is
// the copy-on-write primitive of the MVCC layer — a writer clones a
// published relation, mutates the clone, and installs it, while readers
// keep iterating the original. Mutating a shared element through the
// clone is NOT safe; element-level updates must deep-clone the element
// first (remove, clone, mutate, re-add).
func (s *Set) ShallowClone() *Set {
	c := &Set{
		elems:   make([]Object, len(s.elems)),
		holes:   s.holes,
		version: s.version,
	}
	copy(c.elems, s.elems)
	if s.index != nil {
		c.index = make(map[uint64][]int, len(s.index))
		for h, bucket := range s.index {
			nb := make([]int, len(bucket))
			copy(nb, bucket)
			c.index[h] = nb
		}
	}
	return c
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() Object {
	c := NewSet()
	s.Each(func(e Object) bool {
		c.Add(e.Clone())
		return true
	})
	return c
}

// String renders the set as {elem, elem, …} in insertion order.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Each(func(e Object) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(e.String())
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// CanonicalString renders the set with elements in canonical order, for
// deterministic test assertions.
func (s *Set) CanonicalString() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.SortedElems() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(canonicalString(e))
	}
	b.WriteByte('}')
	return b.String()
}
