package object

import (
	"fmt"
	"testing"
)

func benchTuple(i int) *Tuple {
	return TupleOf("date", NewDate(85, 1+i%12, 1+i%28), "stkCode", fmt.Sprintf("stk%03d", i%100), "clsPrice", i%500)
}

func BenchmarkTupleHash(b *testing.B) {
	t := benchTuple(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Hash()
	}
}

func BenchmarkTupleEqual(b *testing.B) {
	x, y := benchTuple(7), benchTuple(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("should be equal")
		}
	}
}

func BenchmarkSetAdd(b *testing.B) {
	b.ReportAllocs()
	s := NewSet()
	for i := 0; i < b.N; i++ {
		s.Add(benchTuple(i))
	}
}

func BenchmarkSetContains(b *testing.B) {
	s := NewSet()
	for i := 0; i < 10000; i++ {
		s.Add(benchTuple(i))
	}
	probe := benchTuple(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Contains(probe) {
			b.Fatal("missing")
		}
	}
}

func BenchmarkSetAddRemoveChurn(b *testing.B) {
	s := NewSet()
	for i := 0; i < 1000; i++ {
		s.Add(benchTuple(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := benchTuple(1000 + i)
		s.Add(t)
		s.Remove(t)
	}
}

func BenchmarkTupleGet(b *testing.B) {
	t := benchTuple(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Get("clsPrice"); !ok {
			b.Fatal("missing attr")
		}
	}
}

func BenchmarkCloneDeep(b *testing.B) {
	s := NewSet()
	for i := 0; i < 100; i++ {
		s.Add(benchTuple(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	s := NewSet()
	for i := 0; i < 100; i++ {
		s.Add(benchTuple(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := MarshalJSON(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}
