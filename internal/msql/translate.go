package msql

import (
	"fmt"

	"idl/internal/ast"
	"idl/internal/object"
)

// Translate compiles an MSQL statement to an equivalent IDL query —
// the executable form of the paper's claim that IDL's interoperability
// features subsume MSQL's (§1). It returns the query and the mapping
// from result-set column names to the IDL variables carrying them.
//
// The translation:
//
//   - each FROM item becomes a conjunct `.db.rel(.attr=V, …)` binding a
//     fresh variable per referenced attribute; a database semantic
//     variable &D becomes an IDL higher-order variable in database
//     position — MSQL's broadcast is one case of IDL's metadata
//     quantification;
//   - each WHERE condition becomes a Datalog-style constraint between
//     the bound variables / literals.
func Translate(st *Statement) (*ast.Query, map[string]string, error) {
	// Fresh-variable naming: V_<alias>_<attr> and D_<dbvar>.
	attrVar := func(alias, attr string) string { return "V_" + alias + "_" + attr }
	dbVar := func(v string) string { return "D_" + v }

	// Attributes referenced per alias.
	attrs := map[string]map[string]bool{}
	touch := func(alias, attr string) {
		m, ok := attrs[alias]
		if !ok {
			m = map[string]bool{}
			attrs[alias] = m
		}
		m[attr] = true
	}
	for _, s := range st.Select {
		if s.DBVar == "" {
			touch(s.Alias, s.Attr)
		}
	}
	for _, c := range st.Where {
		if c.L.Lit == nil {
			touch(c.L.Alias, c.L.Attr)
		}
		if c.R.Lit == nil {
			touch(c.R.Alias, c.R.Attr)
		}
	}

	var conjuncts []ast.Expr
	for _, f := range st.From {
		var inner []ast.Expr
		names := sortedAttrNames(attrs[f.Alias])
		for _, a := range names {
			inner = append(inner, ast.Attr(a, ast.Eq(ast.V(attrVar(f.Alias, a)))))
		}
		var innerExpr ast.Expr = ast.Epsilon{}
		if len(inner) > 0 {
			innerExpr = &ast.SetExpr{X: ast.Conj(inner...)}
		} else {
			innerExpr = &ast.SetExpr{X: ast.Epsilon{}}
		}
		relAttr := ast.Attr(f.Rel, innerExpr)
		var dbTerm ast.Term
		if f.DBVar != "" {
			dbTerm = ast.V(dbVar(f.DBVar))
		} else {
			dbTerm = ast.C(f.DB)
		}
		conjuncts = append(conjuncts, &ast.AttrExpr{
			Name: dbTerm,
			Expr: ast.Conj(relAttr),
		})
	}
	for _, c := range st.Where {
		l, err := operandTerm(c.L, attrVar)
		if err != nil {
			return nil, nil, err
		}
		r, err := operandTerm(c.R, attrVar)
		if err != nil {
			return nil, nil, err
		}
		op, err := relop(c.Op)
		if err != nil {
			return nil, nil, err
		}
		conjuncts = append(conjuncts, &ast.Constraint{L: l, Op: op, R: r})
	}

	columns := map[string]string{}
	for _, s := range st.Select {
		if s.DBVar != "" {
			columns["&"+s.DBVar] = dbVar(s.DBVar)
		} else {
			columns[s.Alias+"."+s.Attr] = attrVar(s.Alias, s.Attr)
		}
	}
	return &ast.Query{Body: ast.Conj(conjuncts...)}, columns, nil
}

func sortedAttrNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	// insertion sort for determinism without importing sort twice
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func operandTerm(o CondOperand, attrVar func(alias, attr string) string) (ast.Term, error) {
	if o.Lit != nil {
		return ast.Const{Value: o.Lit}, nil
	}
	return ast.V(attrVar(o.Alias, o.Attr)), nil
}

func relop(op string) (ast.RelOp, error) {
	switch op {
	case "=":
		return ast.OpEQ, nil
	case "!=":
		return ast.OpNE, nil
	case "<":
		return ast.OpLT, nil
	case "<=":
		return ast.OpLE, nil
	case ">":
		return ast.OpGT, nil
	case ">=":
		return ast.OpGE, nil
	default:
		return 0, fmt.Errorf("msql: unknown operator %q", op)
	}
}

// literal re-exported helper for tests.
func Lit(v any) object.Object {
	switch x := v.(type) {
	case object.Object:
		return x
	case int:
		return object.Int(x)
	case string:
		return object.Str(x)
	default:
		panic("msql: unsupported literal")
	}
}
