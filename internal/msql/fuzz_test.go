package msql

import (
	"testing"
)

// FuzzParseMSQL checks the MSQL parser never panics and that everything
// that parses also translates to IDL without panicking.
func FuzzParseMSQL(f *testing.F) {
	seeds := []string{
		"SELECT r.stkCode FROM euter.r WHERE r.clsPrice > 100",
		"SELECT &D, r.stkCode FROM &D.r WHERE r.stkCode = 'hp'",
		"SELECT a.x, b.y FROM d1.r a, d2.s b WHERE a.k = b.k AND a.v != 3.5",
		"SELECT x FROM d.r WHERE x = 3/3/85",
		"select x from d.r",
		"SELECT",
		"SELECT & FROM",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		if _, _, err := Translate(st); err != nil {
			t.Fatalf("parsed statement %q failed to translate: %v", src, err)
		}
	})
}
