package msql

import (
	"sort"
	"strings"
	"testing"

	"idl/internal/core"
	"idl/internal/object"
	"idl/internal/stocks"
)

// twoEuters builds a universe with two euter-schema databases (the shape
// MSQL broadcasts handle) plus the chwab/ource schemas (which it cannot).
func twoEuters(t testing.TB) *object.Tuple {
	t.Helper()
	u, _ := stocks.Universe(stocks.Config{Stocks: 4, Days: 3, Seed: 3})
	// Clone euter as euter2 with one extra row.
	euter, _ := u.Get("euter")
	euter2 := euter.Clone().(*object.Tuple)
	rel, _ := euter2.Get("r")
	rel.(*object.Set).Add(object.TupleOf(
		"date", object.NewDate(85, 2, 1), "stkCode", "extra", "clsPrice", 999))
	u.Put("euter2", euter2)
	return u
}

func TestParseBasics(t *testing.T) {
	st, err := Parse("SELECT r.stkCode FROM euter.r WHERE r.clsPrice > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Select) != 1 || st.Select[0].Attr != "stkCode" {
		t.Errorf("select = %+v", st.Select)
	}
	if len(st.From) != 1 || st.From[0].DB != "euter" || st.From[0].Rel != "r" {
		t.Errorf("from = %+v", st.From)
	}
	if len(st.Where) != 1 || st.Where[0].Op != ">" {
		t.Errorf("where = %+v", st.Where)
	}
}

func TestParseUnqualifiedWithSingleFrom(t *testing.T) {
	st, err := Parse("SELECT stkCode FROM euter.r WHERE clsPrice > 100")
	if err != nil {
		t.Fatal(err)
	}
	if st.Select[0].Alias != "r" {
		t.Errorf("alias defaulting failed: %+v", st.Select[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM euter.r",
		"SELECT x FROM",
		"SELECT x FROM euter",
		"SELECT x FROM euter.r WHERE",
		"SELECT x FROM euter.r WHERE a ! b",
		"SELECT a.x FROM euter.r b",      // unknown alias a
		"SELECT x FROM a.r one, b.r one", // duplicate alias
		"SELECT x, y FROM a.r one, b.s two WHERE x = 1", // ambiguous unqualified
		"SELECT &Z FROM euter.r",                        // unknown db variable
		"SELECT x FROM euter.r WHERE a = 'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExecSingleDatabase(t *testing.T) {
	u := twoEuters(t)
	st, err := Parse("SELECT r.stkCode, r.clsPrice FROM euter2.r WHERE r.clsPrice > 500")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Exec(st, u)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || !rs.Rows[0][0].Equal(object.Str("extra")) {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestExecBroadcastOverDatabases(t *testing.T) {
	u := twoEuters(t)
	// MSQL's signature: &D ranges over databases holding relation r —
	// euter, euter2 and chwab here (chwab also has r!).
	st, err := Parse("SELECT &D, r.stkCode FROM &D.r WHERE r.clsPrice > 500")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Exec(st, u)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || !rs.Rows[0][0].Equal(object.Str("euter2")) {
		t.Errorf("rows = %v", rs.Rows)
	}
	// Broadcast with a weaker predicate matches euter AND euter2 rows.
	st, _ = Parse("SELECT &D FROM &D.r WHERE r.stkCode = 'stk001'")
	rs, err = Exec(st, u)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Errorf("databases quoting stk001 = %v", rs.Rows)
	}
}

func TestExecJoinAcrossDatabases(t *testing.T) {
	u := twoEuters(t)
	// Stocks with the same price in euter and euter2 on the same day.
	st, err := Parse("SELECT a.stkCode FROM euter.r a, euter2.r b WHERE a.stkCode = b.stkCode AND a.date = b.date AND a.clsPrice = b.clsPrice")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Exec(st, u)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 4 { // all four stocks agree (euter2 is a clone)
		t.Errorf("rows = %v", rs.Rows)
	}
}

// TestMSQLCannotReachMetadata documents the expressiveness boundary: the
// chwab/ource schemas hold the stock in attribute/relation position, and
// no MSQL statement of this subset can enumerate those names. The best
// MSQL can do is a query PER STOCK, written by someone who already knows
// the schema.
func TestMSQLCannotReachMetadata(t *testing.T) {
	// Against chwab, "any stock above X" must name each column:
	perColumn := []string{
		"SELECT r.date FROM chwab.r WHERE r.stk001 > 100",
		"SELECT r.date FROM chwab.r WHERE r.stk002 > 100",
		// … one statement per stock: program size grows with the schema.
	}
	for _, src := range perColumn {
		if _, err := Parse(src); err != nil {
			t.Fatalf("per-column fallback should parse: %v", err)
		}
	}
	// There is no syntax for "some column > 100": '&' variables range
	// over databases only.
	if _, err := Parse("SELECT &A FROM chwab.r WHERE r.&A > 100"); err == nil {
		t.Error("attribute variables must not parse — that is IDL's contribution")
	}
}

// TestTranslationAgreesWithIDL is the subsumption check: every MSQL
// statement, compiled to IDL, produces the same result set.
func TestTranslationAgreesWithIDL(t *testing.T) {
	u := twoEuters(t)
	e := core.NewEngine()
	u.Each(func(db string, v object.Object) bool {
		e.Base().Put(db, v)
		return true
	})
	e.Invalidate()

	statements := []string{
		"SELECT r.stkCode, r.clsPrice FROM euter.r WHERE r.clsPrice > 100",
		"SELECT r.stkCode FROM euter.r",
		"SELECT &D, r.stkCode FROM &D.r WHERE r.clsPrice > 500",
		"SELECT &D FROM &D.r WHERE r.stkCode = 'stk001'",
		"SELECT a.stkCode FROM euter.r a, euter2.r b WHERE a.stkCode = b.stkCode AND a.clsPrice = b.clsPrice",
		"SELECT a.stkCode, b.clsPrice FROM euter.r a, euter2.r b WHERE a.stkCode = b.stkCode AND b.clsPrice > 900",
	}
	for _, src := range statements {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		direct, err := Exec(st, u)
		if err != nil {
			t.Fatalf("exec %q: %v", src, err)
		}
		q, columns, err := Translate(st)
		if err != nil {
			t.Fatalf("translate %q: %v", src, err)
		}
		ans, err := e.Query(q)
		if err != nil {
			t.Fatalf("IDL exec of translated %q (%s): %v", src, q, err)
		}
		// Compare canonical renderings.
		got := renderIDL(ans, st, columns)
		want := direct.Canonical()
		if got != want {
			t.Errorf("translation disagreement for %q:\nIDL:\n%s\nMSQL:\n%s\n(translated: %s)",
				src, got, want, q)
		}
	}
}

// renderIDL projects an IDL answer onto the statement's column order and
// renders it like ResultSet.Canonical.
func renderIDL(ans *core.Answer, st *Statement, columns map[string]string) string {
	var headers []string
	for _, s := range st.Select {
		if s.DBVar != "" {
			headers = append(headers, "&"+s.DBVar)
		} else {
			headers = append(headers, s.Alias+"."+s.Attr)
		}
	}
	seen := map[string]bool{}
	var lines []string
	for _, row := range ans.Rows {
		cells := make([]string, len(headers))
		for i, h := range headers {
			v, ok := row[columns[h]]
			if !ok {
				cells[i] = "_"
				continue
			}
			cells[i] = v.String()
		}
		line := strings.Join(cells, "\t")
		if !seen[line] {
			seen[line] = true
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	return strings.Join(headers, "\t") + "\n" + strings.Join(lines, "\n")
}

func TestExecErrors(t *testing.T) {
	u := twoEuters(t)
	st, err := Parse("SELECT r.x FROM missing.r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(st, u); err == nil {
		t.Error("missing database should fail")
	}
	st, err = Parse("SELECT missing.x FROM euter.missing")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(st, u); err == nil {
		t.Error("missing relation should fail")
	}
}

func TestCanonicalStable(t *testing.T) {
	rs := &ResultSet{
		Columns: []string{"a"},
		Rows:    [][]object.Object{{object.Int(2)}, {object.Int(1)}},
	}
	want := "a\n1\n2"
	if got := rs.Canonical(); got != want {
		t.Errorf("Canonical = %q", got)
	}
}
