package msql

import (
	"fmt"
	"sort"
	"strings"

	"idl/internal/object"
)

// ResultSet is a statement's answer: named columns and deduplicated rows.
type ResultSet struct {
	Columns []string
	Rows    [][]object.Object
}

// Len returns the row count.
func (r *ResultSet) Len() int { return len(r.Rows) }

// Canonical renders the result set deterministically (sorted rows) for
// comparison and tests.
func (r *ResultSet) Canonical() string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		lines[i] = strings.Join(cells, "\t")
	}
	sort.Strings(lines)
	return strings.Join(r.Columns, "\t") + "\n" + strings.Join(lines, "\n")
}

// Exec evaluates a statement against a universe tuple. Database semantic
// variables range over every database that holds all the relations the
// variable is used with ("multiple queries": results are unioned).
func Exec(st *Statement, universe *object.Tuple) (*ResultSet, error) {
	// Column headers.
	rs := &ResultSet{}
	for _, s := range st.Select {
		if s.DBVar != "" {
			rs.Columns = append(rs.Columns, "&"+s.DBVar)
		} else {
			rs.Columns = append(rs.Columns, s.Alias+"."+s.Attr)
		}
	}
	// Candidate databases per variable.
	varNames, candidates, err := dbCandidates(st, universe)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	// Enumerate assignments (cartesian product).
	assignment := map[string]string{}
	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(varNames) {
			return execAssignment(st, universe, assignment, rs, seen)
		}
		for _, db := range candidates[varNames[i]] {
			assignment[varNames[i]] = db
			if err := enumerate(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := enumerate(0); err != nil {
		return nil, err
	}
	return rs, nil
}

// dbCandidates computes, per database variable, the databases holding
// every relation the variable is used with.
func dbCandidates(st *Statement, universe *object.Tuple) ([]string, map[string][]string, error) {
	needs := map[string][]string{} // var -> relations required
	var order []string
	for _, f := range st.From {
		if f.DBVar == "" {
			continue
		}
		if _, ok := needs[f.DBVar]; !ok {
			order = append(order, f.DBVar)
		}
		needs[f.DBVar] = append(needs[f.DBVar], f.Rel)
	}
	out := map[string][]string{}
	for _, v := range order {
		var dbs []string
		universe.Each(func(dbName string, dbObj object.Object) bool {
			dbt, ok := dbObj.(*object.Tuple)
			if !ok {
				return true
			}
			for _, rel := range needs[v] {
				if r, ok := dbt.Get(rel); !ok {
					return true
				} else if _, isSet := r.(*object.Set); !isSet {
					return true
				}
			}
			dbs = append(dbs, dbName)
			return true
		})
		sort.Strings(dbs)
		out[v] = dbs
	}
	return order, out, nil
}

// execAssignment evaluates the join for one database-variable assignment.
func execAssignment(st *Statement, universe *object.Tuple, assignment map[string]string, rs *ResultSet, seen map[string]bool) error {
	// Resolve the relations.
	rels := make([]*object.Set, len(st.From))
	for i, f := range st.From {
		dbName := f.DB
		if f.DBVar != "" {
			dbName = assignment[f.DBVar]
		}
		dbObj, ok := universe.Get(dbName)
		if !ok {
			return fmt.Errorf("msql: no database %q", dbName)
		}
		dbt, ok := dbObj.(*object.Tuple)
		if !ok {
			return fmt.Errorf("msql: %q is not a database", dbName)
		}
		relObj, ok := dbt.Get(f.Rel)
		if !ok {
			return fmt.Errorf("msql: no relation %s.%s", dbName, f.Rel)
		}
		rel, ok := relObj.(*object.Set)
		if !ok {
			return fmt.Errorf("msql: %s.%s is not a relation", dbName, f.Rel)
		}
		rels[i] = rel
	}
	// Nested-loop join with condition checks as soon as both sides bind.
	binding := map[string]*object.Tuple{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(st.From) {
			return emit(st, assignment, binding, rs, seen)
		}
		alias := st.From[i].Alias
		var failure error
		rels[i].Each(func(e object.Object) bool {
			t, ok := e.(*object.Tuple)
			if !ok {
				return true
			}
			binding[alias] = t
			if condsSatisfiable(st, binding) {
				if err := rec(i + 1); err != nil {
					failure = err
					return false
				}
			}
			delete(binding, alias)
			return true
		})
		return failure
	}
	return rec(0)
}

// condsSatisfiable checks every condition whose operands are all bound.
func condsSatisfiable(st *Statement, binding map[string]*object.Tuple) bool {
	for _, c := range st.Where {
		l, lok := operandValue(c.L, binding)
		r, rok := operandValue(c.R, binding)
		if !lok || !rok {
			continue // defer until bound
		}
		if l == nil || r == nil {
			return false // attribute absent in this tuple
		}
		if !applyOp(c.Op, l, r) {
			return false
		}
	}
	return true
}

// operandValue resolves an operand; ok=false means its alias is not yet
// bound; a nil value with ok=true means the attribute is absent.
func operandValue(o CondOperand, binding map[string]*object.Tuple) (object.Object, bool) {
	if o.Lit != nil {
		return o.Lit, true
	}
	t, ok := binding[o.Alias]
	if !ok {
		return nil, false
	}
	v, has := t.Get(o.Attr)
	if !has {
		return nil, true
	}
	return v, true
}

func applyOp(op string, l, r object.Object) bool {
	if _, isNull := l.(object.Null); isNull {
		return false
	}
	if _, isNull := r.(object.Null); isNull {
		return false
	}
	switch op {
	case "=":
		return l.Equal(r)
	case "!=":
		return !l.Equal(r)
	}
	if !object.Comparable(l, r) {
		return false
	}
	c := l.Compare(r)
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

func emit(st *Statement, assignment map[string]string, binding map[string]*object.Tuple, rs *ResultSet, seen map[string]bool) error {
	row := make([]object.Object, len(st.Select))
	var key strings.Builder
	for i, s := range st.Select {
		if s.DBVar != "" {
			row[i] = object.Str(assignment[s.DBVar])
		} else {
			t := binding[s.Alias]
			v, ok := t.Get(s.Attr)
			if !ok {
				return nil // tuples lacking a projected attribute drop out
			}
			row[i] = v
		}
		key.WriteString(row[i].String())
		key.WriteByte('\x00')
	}
	if !seen[key.String()] {
		seen[key.String()] = true
		rs.Rows = append(rs.Rows, row)
	}
	return nil
}
