package msql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"idl/internal/core"
	"idl/internal/object"
	"idl/internal/stocks"
)

// TestPropRandomStatementsAgree generates random statements of the MSQL
// subset and checks the direct interpreter and the IDL translation
// produce identical result sets — a differential test of both engines
// and of the subsumption claim.
func TestPropRandomStatementsAgree(t *testing.T) {
	u, ds := stocks.Universe(stocks.Config{Stocks: 5, Days: 4, Seed: 77})
	// A second euter-style database so broadcasts span something.
	euter, _ := u.Get("euter")
	u.Put("euter2", euter.Clone())
	e := core.NewEngine()
	u.Each(func(db string, v object.Object) bool {
		e.Base().Put(db, v)
		return true
	})
	e.Invalidate()

	r := rand.New(rand.NewSource(2026))
	attrs := []string{"date", "stkCode", "clsPrice"}
	maxPrice := ds.MaxPrice()

	genStatement := func() string {
		var sb strings.Builder
		sb.WriteString("SELECT ")
		broadcast := r.Intn(3) == 0
		joins := r.Intn(2) == 0 && !broadcast
		alias1, alias2 := "a", "b"
		// SELECT list: 1-2 attrs of alias1 (+ &D when broadcasting).
		nSel := 1 + r.Intn(2)
		var sel []string
		if broadcast {
			sel = append(sel, "&D")
		}
		for i := 0; i < nSel; i++ {
			sel = append(sel, alias1+"."+attrs[r.Intn(len(attrs))])
		}
		sb.WriteString(strings.Join(sel, ", "))
		sb.WriteString(" FROM ")
		if broadcast {
			sb.WriteString("&D.r " + alias1)
		} else {
			sb.WriteString("euter.r " + alias1)
		}
		if joins {
			sb.WriteString(", euter2.r " + alias2)
		}
		// WHERE: 0-2 conditions.
		var conds []string
		nCond := r.Intn(3)
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		for i := 0; i < nCond; i++ {
			switch r.Intn(3) {
			case 0: // price vs literal
				conds = append(conds, fmt.Sprintf("%s.clsPrice %s %d",
					alias1, ops[r.Intn(len(ops))], r.Intn(maxPrice+10)))
			case 1: // stock equality with literal
				conds = append(conds, fmt.Sprintf("%s.stkCode = 'stk%03d'", alias1, 1+r.Intn(5)))
			default: // join condition when joined, else another literal
				if joins {
					a := attrs[r.Intn(len(attrs))]
					conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", alias1, a, alias2, a))
				} else {
					conds = append(conds, fmt.Sprintf("%s.clsPrice >= %d", alias1, r.Intn(maxPrice)))
				}
			}
		}
		if joins {
			// Always correlate joins on stkCode so sizes stay bounded.
			conds = append(conds, alias1+".stkCode = "+alias2+".stkCode")
		}
		if len(conds) > 0 {
			sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
		}
		return sb.String()
	}

	for i := 0; i < 120; i++ {
		src := genStatement()
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("generated statement %q does not parse: %v", src, err)
		}
		direct, err := Exec(st, u)
		if err != nil {
			t.Fatalf("exec %q: %v", src, err)
		}
		q, columns, err := Translate(st)
		if err != nil {
			t.Fatalf("translate %q: %v", src, err)
		}
		ans, err := e.Query(q)
		if err != nil {
			t.Fatalf("IDL exec of %q (%s): %v", src, q, err)
		}
		got := renderIDL(ans, st, columns)
		want := direct.Canonical()
		if got != want {
			t.Fatalf("disagreement for %q:\nIDL:\n%s\nMSQL:\n%s\ntranslated: %s",
				src, got, want, q)
		}
	}
}
