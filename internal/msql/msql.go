// Package msql implements a small multidatabase SQL in the spirit of
// Litwin's MSQL [Li89], the system whose interoperability features the
// paper claims IDL subsumes (§1). The subset captures MSQL's signature
// capabilities:
//
//   - multidatabase naming: FROM db.rel;
//   - *database* semantic variables: FROM &D.rel broadcasts the query to
//     every database holding the relation, with &D available in the
//     SELECT list ("multiple queries", results unioned);
//   - multidatabase joins across FROM items.
//
// What it deliberately cannot do — quantify over *attribute* or
// *relation* names — is the paper's point: posing "any stock above 200"
// against the chwab or ource schema is inexpressible here (see the
// tests), while IDL needs one expression. Compile (msql.Translate) turns
// any statement of this subset into an equivalent IDL query, making the
// subsumption claim executable.
package msql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"idl/internal/object"
)

// Statement is a parsed SELECT.
type Statement struct {
	Select []SelectItem
	From   []FromItem
	Where  []Condition
}

// SelectItem projects an attribute of a FROM alias, or a database
// variable (`&D`).
type SelectItem struct {
	Alias string // FROM alias; empty when DBVar is set
	Attr  string
	DBVar string // "&D" projection: the database a broadcast row came from
}

// FromItem names one relation: a concrete database or a database
// variable.
type FromItem struct {
	DB    string // concrete database name (empty when DBVar set)
	DBVar string // database semantic variable name (without '&')
	Rel   string
	Alias string
}

// CondOperand is an attribute reference or a literal.
type CondOperand struct {
	Alias string
	Attr  string
	Lit   object.Object // non-nil for literals
}

// Condition is `operand op operand` (conditions are AND-ed).
type Condition struct {
	L  CondOperand
	Op string // = != < <= > >=
	R  CondOperand
}

// ---------------------------------------------------------------------------
// Parsing (hand-rolled; the subset is small)

type tokenizer struct {
	src string
	pos int
}

func (t *tokenizer) skipSpace() {
	for t.pos < len(t.src) && unicode.IsSpace(rune(t.src[t.pos])) {
		t.pos++
	}
}

func (t *tokenizer) peek() byte {
	t.skipSpace()
	if t.pos >= len(t.src) {
		return 0
	}
	return t.src[t.pos]
}

// next returns the next token: word, number, quoted string, or symbol.
func (t *tokenizer) next() (string, error) {
	t.skipSpace()
	if t.pos >= len(t.src) {
		return "", nil
	}
	c := t.src[t.pos]
	switch {
	case c == ',' || c == '.' || c == '&' || c == '(' || c == ')':
		t.pos++
		return string(c), nil
	case c == '=':
		t.pos++
		return "=", nil
	case c == '<' || c == '>' || c == '!':
		t.pos++
		if t.pos < len(t.src) && t.src[t.pos] == '=' {
			t.pos++
			return string(c) + "=", nil
		}
		if c == '!' {
			return "", fmt.Errorf("msql: lone '!' at %d", t.pos-1)
		}
		return string(c), nil
	case c == '\'':
		end := strings.IndexByte(t.src[t.pos+1:], '\'')
		if end < 0 {
			return "", fmt.Errorf("msql: unterminated string at %d", t.pos)
		}
		tok := t.src[t.pos : t.pos+end+2]
		t.pos += end + 2
		return tok, nil
	case unicode.IsDigit(rune(c)):
		start := t.pos
		for t.pos < len(t.src) && (unicode.IsDigit(rune(t.src[t.pos])) || t.src[t.pos] == '/') {
			t.pos++
		}
		if t.pos < len(t.src) && t.src[t.pos] == '.' && t.pos+1 < len(t.src) && unicode.IsDigit(rune(t.src[t.pos+1])) {
			t.pos++
			for t.pos < len(t.src) && unicode.IsDigit(rune(t.src[t.pos])) {
				t.pos++
			}
		}
		return t.src[start:t.pos], nil
	case unicode.IsLetter(rune(c)) || c == '_':
		start := t.pos
		for t.pos < len(t.src) && (unicode.IsLetter(rune(t.src[t.pos])) || unicode.IsDigit(rune(t.src[t.pos])) || t.src[t.pos] == '_') {
			t.pos++
		}
		return t.src[start:t.pos], nil
	default:
		return "", fmt.Errorf("msql: unexpected character %q at %d", c, t.pos)
	}
}

func (t *tokenizer) expectWord(want string) error {
	tok, err := t.next()
	if err != nil {
		return err
	}
	if !strings.EqualFold(tok, want) {
		return fmt.Errorf("msql: expected %s, found %q", want, tok)
	}
	return nil
}

// Parse parses one SELECT statement.
func Parse(src string) (*Statement, error) {
	t := &tokenizer{src: src}
	if err := t.expectWord("SELECT"); err != nil {
		return nil, err
	}
	st := &Statement{}
	// SELECT list.
	for {
		item, err := parseSelectItem(t)
		if err != nil {
			return nil, err
		}
		st.Select = append(st.Select, item)
		if t.peek() != ',' {
			break
		}
		t.next()
	}
	if err := t.expectWord("FROM"); err != nil {
		return nil, err
	}
	for {
		item, err := parseFromItem(t)
		if err != nil {
			return nil, err
		}
		st.From = append(st.From, item)
		if t.peek() != ',' {
			break
		}
		t.next()
	}
	// Optional WHERE.
	t.skipSpace()
	if t.pos < len(t.src) {
		if err := t.expectWord("WHERE"); err != nil {
			return nil, err
		}
		for {
			cond, err := parseCondition(t, st)
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			t.skipSpace()
			if t.pos >= len(t.src) {
				break
			}
			if err := t.expectWord("AND"); err != nil {
				return nil, err
			}
		}
	}
	if err := st.resolve(); err != nil {
		return nil, err
	}
	return st, nil
}

func parseSelectItem(t *tokenizer) (SelectItem, error) {
	if t.peek() == '&' {
		t.next()
		name, err := t.next()
		if err != nil || name == "" {
			return SelectItem{}, fmt.Errorf("msql: expected variable name after '&'")
		}
		return SelectItem{DBVar: name}, nil
	}
	first, err := t.next()
	if err != nil || first == "" {
		return SelectItem{}, fmt.Errorf("msql: expected select item")
	}
	if t.peek() == '.' {
		t.next()
		attr, err := t.next()
		if err != nil || attr == "" {
			return SelectItem{}, fmt.Errorf("msql: expected attribute after %q.", first)
		}
		return SelectItem{Alias: first, Attr: attr}, nil
	}
	return SelectItem{Attr: first}, nil
}

func parseFromItem(t *tokenizer) (FromItem, error) {
	item := FromItem{}
	if t.peek() == '&' {
		t.next()
		name, err := t.next()
		if err != nil || name == "" {
			return item, fmt.Errorf("msql: expected variable name after '&'")
		}
		item.DBVar = name
	} else {
		db, err := t.next()
		if err != nil || db == "" {
			return item, fmt.Errorf("msql: expected database name")
		}
		item.DB = db
	}
	tok, err := t.next()
	if err != nil || tok != "." {
		return item, fmt.Errorf("msql: expected '.' after database")
	}
	rel, err := t.next()
	if err != nil || rel == "" {
		return item, fmt.Errorf("msql: expected relation name")
	}
	item.Rel = rel
	// Optional alias (a bare word that is not WHERE/AND or ',').
	save := t.pos
	tok, err = t.next()
	if err == nil && tok != "" && tok != "," && !strings.EqualFold(tok, "WHERE") && isWord(tok) {
		item.Alias = tok
	} else {
		t.pos = save
	}
	if item.Alias == "" {
		item.Alias = item.Rel
	}
	return item, nil
}

func isWord(s string) bool {
	for i, r := range s {
		if !(unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r))) {
			return false
		}
	}
	return s != ""
}

func parseCondition(t *tokenizer, st *Statement) (Condition, error) {
	l, err := parseOperand(t)
	if err != nil {
		return Condition{}, err
	}
	op, err := t.next()
	if err != nil {
		return Condition{}, err
	}
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return Condition{}, fmt.Errorf("msql: expected comparison operator, found %q", op)
	}
	r, err := parseOperand(t)
	if err != nil {
		return Condition{}, err
	}
	return Condition{L: l, Op: op, R: r}, nil
}

func parseOperand(t *tokenizer) (CondOperand, error) {
	tok, err := t.next()
	if err != nil || tok == "" {
		return CondOperand{}, fmt.Errorf("msql: expected operand")
	}
	// Literal forms.
	if tok[0] == '\'' {
		return CondOperand{Lit: object.Str(strings.Trim(tok, "'"))}, nil
	}
	if unicode.IsDigit(rune(tok[0])) {
		return CondOperand{Lit: parseNumberOrDate(tok)}, nil
	}
	// attribute reference: word or alias.word
	if t.peek() == '.' {
		t.next()
		attr, err := t.next()
		if err != nil || attr == "" {
			return CondOperand{}, fmt.Errorf("msql: expected attribute after %q.", tok)
		}
		return CondOperand{Alias: tok, Attr: attr}, nil
	}
	return CondOperand{Attr: tok}, nil
}

func parseNumberOrDate(tok string) object.Object {
	if strings.Contains(tok, "/") {
		parts := strings.Split(tok, "/")
		if len(parts) == 3 {
			m, e1 := strconv.Atoi(parts[0])
			d, e2 := strconv.Atoi(parts[1])
			y, e3 := strconv.Atoi(parts[2])
			if e1 == nil && e2 == nil && e3 == nil {
				return object.NewDate(y, m, d)
			}
		}
		return object.Str(tok)
	}
	if strings.Contains(tok, ".") {
		if f, err := strconv.ParseFloat(tok, 64); err == nil {
			return object.Float(f)
		}
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return object.Int(n)
	}
	return object.Str(tok)
}

// resolve checks alias references and fills in unqualified attributes
// (allowed only with a single FROM item).
func (st *Statement) resolve() error {
	aliases := map[string]bool{}
	var dbVars []string
	seenVar := map[string]bool{}
	for _, f := range st.From {
		if aliases[f.Alias] {
			return fmt.Errorf("msql: duplicate alias %q", f.Alias)
		}
		aliases[f.Alias] = true
		if f.DBVar != "" && !seenVar[f.DBVar] {
			seenVar[f.DBVar] = true
			dbVars = append(dbVars, f.DBVar)
		}
	}
	defaultAlias := ""
	if len(st.From) == 1 {
		defaultAlias = st.From[0].Alias
	}
	fix := func(alias *string, what string) error {
		if *alias == "" {
			if defaultAlias == "" {
				return fmt.Errorf("msql: %s must be qualified when joining", what)
			}
			*alias = defaultAlias
			return nil
		}
		if !aliases[*alias] {
			return fmt.Errorf("msql: unknown alias %q", *alias)
		}
		return nil
	}
	for i := range st.Select {
		s := &st.Select[i]
		if s.DBVar != "" {
			if !seenVar[s.DBVar] {
				return fmt.Errorf("msql: unknown database variable &%s", s.DBVar)
			}
			continue
		}
		if err := fix(&s.Alias, "select item "+s.Attr); err != nil {
			return err
		}
	}
	for i := range st.Where {
		c := &st.Where[i]
		if c.L.Lit == nil {
			if err := fix(&c.L.Alias, "condition operand "+c.L.Attr); err != nil {
				return err
			}
		}
		if c.R.Lit == nil {
			if err := fix(&c.R.Alias, "condition operand "+c.R.Attr); err != nil {
				return err
			}
		}
	}
	return nil
}
