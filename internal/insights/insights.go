// Package insights maintains per-statement query digests: every
// operation the DB facade runs is folded into a record keyed by its
// AST fingerprint (the same structural key the plan cache uses), so a
// workload of millions of calls condenses into one entry per query
// *shape* — with call/error/degraded counts, a rolling-window latency
// histogram, plan-cache outcome tallies, and the per-operation resource
// accounting the evaluator threads through core.Answer/ExecResult.
//
// The store is lock-cheap on the hot path: one RWMutex read-lock to
// find the entry (a write lock only the first time a shape is seen)
// plus atomic adds; the windowed histogram is the same lock-free
// structure the engine's telemetry uses. Slow-query capture is the
// rare path — when an observation crosses the absolute threshold or a
// self-relative multiple of the digest's own windowed p50, the
// configured capture source attaches the correlated trace tree and a
// flight-recorder excerpt to a bounded per-digest exemplar ring.
package insights

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"idl/internal/obs"
	"idl/internal/qlog"
)

// Defaults for Config zero values.
const (
	DefaultMaxDigests   = 512
	DefaultMaxExemplars = 4
	DefaultMinSamples   = 32
	DefaultSlowFactor   = 0 // self-relative capture off unless configured
)

// Config tunes a Store. The zero value selects the noted defaults;
// capture is disabled until SlowThreshold or SlowFactor is set.
type Config struct {
	// MaxDigests bounds the number of distinct statement shapes tracked;
	// observations of new shapes beyond the bound are counted in
	// Dropped() and otherwise ignored. Default 512.
	MaxDigests int
	// MaxExemplars bounds each digest's slow-exemplar ring (oldest
	// evicted). Default 4.
	MaxExemplars int
	// SlowThreshold captures an exemplar whenever an observation takes at
	// least this long. 0 disables the absolute rule.
	SlowThreshold time.Duration
	// SlowFactor captures when an observation takes at least
	// SlowFactor × the digest's own windowed p50 — an adaptive rule that
	// flags a statement degrading relative to itself. 0 disables it.
	SlowFactor float64
	// MinSamples is how many windowed observations a digest needs before
	// the self-relative rule applies (a p50 over two samples is noise).
	// Default 32.
	MinSamples uint64
	// Window / WindowSlices configure the per-digest latency window.
	// Defaults obs.DefaultWindow / obs.DefaultWindowSlices.
	Window       time.Duration
	WindowSlices int
}

func (c Config) withDefaults() Config {
	if c.MaxDigests <= 0 {
		c.MaxDigests = DefaultMaxDigests
	}
	if c.MaxExemplars <= 0 {
		c.MaxExemplars = DefaultMaxExemplars
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.Window <= 0 {
		c.Window = obs.DefaultWindow
	}
	if c.WindowSlices <= 0 {
		c.WindowSlices = obs.DefaultWindowSlices
	}
	return c
}

// Resources is the per-operation resource record a digest accumulates.
// The core evaluator fills the scan/emit/fixpoint fields; the facade
// adds federation fetches and WAL bytes.
type Resources struct {
	RowsScanned    uint64 `json:"rows_scanned"`
	TuplesEmitted  uint64 `json:"tuples_emitted"`
	FixpointRounds uint64 `json:"fixpoint_rounds"`
	IndexBuilds    uint64 `json:"index_builds"`
	IndexProbes    uint64 `json:"index_probes"`
	FedFetches     uint64 `json:"federation_fetches"`
	WALBytes       uint64 `json:"wal_bytes"`
}

// Observation is one finished operation as the facade reports it.
type Observation struct {
	Fingerprint uint64
	Kind        string // "query", "exec", "call"
	// Text renders the canonical statement. It is a thunk, not a
	// string, because it is only invoked the first time a shape is
	// seen — the steady-state observe path never pays for rendering.
	Text      func() string
	Duration  time.Duration
	Err       bool
	Degraded  bool
	PlanCache string // "", "hit", "stale", "miss", "cold"
	TraceID   string
	Resources Resources
}

// Exemplar is one captured slow execution of a statement shape: the
// facade-minted trace ID (joining the qlog event, journal record, and
// WAL commit spans), the correlated span tree when tracing was on, and
// a flight-recorder excerpt leading up to the capture.
type Exemplar struct {
	TraceID    string        `json:"trace_id,omitempty"`
	When       time.Time     `json:"when"`
	DurationNS int64         `json:"duration_ns"`
	Trace      *obs.Span     `json:"trace,omitempty"`
	Events     []*qlog.Event `json:"events,omitempty"`
}

// CaptureSource materializes an exemplar's context for a trace ID: the
// matching retained span tree (nil when tracing is off or the span
// aged out) and a recent-events excerpt.
type CaptureSource func(traceID string) (*obs.Span, []*qlog.Event)

// entry is one statement shape's live record. Counters are atomics so
// Observe never locks it; the exemplar ring has its own mutex, taken
// only on the (rare) capture path and on snapshot reads.
type entry struct {
	fp   uint64
	kind string
	text string

	calls    atomic.Uint64
	errors   atomic.Uint64
	degraded atomic.Uint64
	totalNS  atomic.Int64

	planHit   atomic.Uint64
	planStale atomic.Uint64
	planMiss  atomic.Uint64
	planCold  atomic.Uint64

	rowsScanned    atomic.Uint64
	tuplesEmitted  atomic.Uint64
	fixpointRounds atomic.Uint64
	indexBuilds    atomic.Uint64
	indexProbes    atomic.Uint64
	fedFetches     atomic.Uint64
	walBytes       atomic.Uint64

	lat *obs.WindowedHistogram

	exMu      sync.Mutex
	exemplars []Exemplar
	captures  uint64
}

func (e *entry) observe(o Observation) {
	e.calls.Add(1)
	if o.Err {
		e.errors.Add(1)
	}
	if o.Degraded {
		e.degraded.Add(1)
	}
	e.totalNS.Add(int64(o.Duration))
	switch o.PlanCache {
	case "hit":
		e.planHit.Add(1)
	case "stale":
		e.planStale.Add(1)
	case "miss":
		e.planMiss.Add(1)
	case "cold":
		e.planCold.Add(1)
	}
	r := o.Resources
	if r.RowsScanned > 0 {
		e.rowsScanned.Add(r.RowsScanned)
	}
	if r.TuplesEmitted > 0 {
		e.tuplesEmitted.Add(r.TuplesEmitted)
	}
	if r.FixpointRounds > 0 {
		e.fixpointRounds.Add(r.FixpointRounds)
	}
	if r.IndexBuilds > 0 {
		e.indexBuilds.Add(r.IndexBuilds)
	}
	if r.IndexProbes > 0 {
		e.indexProbes.Add(r.IndexProbes)
	}
	if r.FedFetches > 0 {
		e.fedFetches.Add(r.FedFetches)
	}
	if r.WALBytes > 0 {
		e.walBytes.Add(r.WALBytes)
	}
	e.lat.Observe(o.Duration)
}

// Digest is a point-in-time snapshot of one statement shape's record.
type Digest struct {
	Fingerprint string    `json:"fingerprint"` // 16-hex AST fingerprint
	Kind        string    `json:"kind"`
	Text        string    `json:"text"`
	Calls       uint64    `json:"calls"`
	Errors      uint64    `json:"errors"`
	Degraded    uint64    `json:"degraded"`
	TotalNS     int64     `json:"total_ns"`
	MeanNS      int64     `json:"mean_ns"`
	PlanHit     uint64    `json:"plan_hit"`
	PlanStale   uint64    `json:"plan_stale"`
	PlanMiss    uint64    `json:"plan_miss"`
	PlanCold    uint64    `json:"plan_cold"`
	Resources   Resources `json:"resources"`
	WindowCount uint64    `json:"window_count"`
	RatePerSec  float64   `json:"rate_per_sec"`
	P50NS       int64     `json:"p50_ns"`
	P99NS       int64     `json:"p99_ns"`
	Captures    uint64    `json:"captures"`
	Exemplars   int       `json:"exemplars"`

	fp uint64
}

// FP returns the numeric fingerprint backing the hex rendering.
func (d Digest) FP() uint64 { return d.fp }

// Store is the statement-digest accumulator.
type Store struct {
	cfg Config

	mu      sync.RWMutex
	entries map[uint64]*entry
	capture CaptureSource

	dropped atomic.Uint64
}

// New returns an empty store with cfg (zero fields defaulted).
func New(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), entries: make(map[uint64]*entry)}
}

// Config returns the store's effective (defaulted) configuration.
func (s *Store) Config() Config { return s.cfg }

// SetCaptureSource installs the slow-exemplar context source (nil:
// exemplars carry only trace ID and duration).
func (s *Store) SetCaptureSource(fn CaptureSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capture = fn
}

// Dropped reports observations of new statement shapes discarded
// because the MaxDigests bound was reached.
func (s *Store) Dropped() uint64 { return s.dropped.Load() }

// CaptureEnabled reports whether the capture policy can ever fire.
// When both rules are off, callers need not mint per-operation trace
// IDs on the store's behalf — no exemplar will want one.
func (s *Store) CaptureEnabled() bool {
	return s.cfg.SlowThreshold > 0 || s.cfg.SlowFactor > 0
}

// Len returns the number of tracked statement shapes.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Reset drops every digest, exemplar, and the dropped counter.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[uint64]*entry)
	s.dropped.Store(0)
}

// Observe folds one finished operation into its digest, capturing a
// slow exemplar when the observation crosses the configured absolute
// or self-relative threshold.
func (s *Store) Observe(o Observation) {
	e := s.entryFor(o)
	if e == nil {
		return
	}
	e.observe(o)
	if s.isSlow(e, o) {
		s.captureExemplar(e, o)
	}
}

// entryFor finds or creates the digest entry: a read-lock map hit in
// the steady state, a write-lock insert the first time a shape is seen.
func (s *Store) entryFor(o Observation) *entry {
	s.mu.RLock()
	e := s.entries[o.Fingerprint]
	s.mu.RUnlock()
	if e != nil {
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e = s.entries[o.Fingerprint]; e != nil {
		return e
	}
	if len(s.entries) >= s.cfg.MaxDigests {
		s.dropped.Add(1)
		return nil
	}
	e = &entry{
		fp:   o.Fingerprint,
		kind: o.Kind,
		lat:  obs.NewWindow(s.cfg.Window, s.cfg.WindowSlices),
	}
	if o.Text != nil {
		e.text = o.Text()
	}
	s.entries[o.Fingerprint] = e
	return e
}

// isSlow applies the capture policy. With both rules disabled it costs
// two compares, so the digests-only configuration stays at benchmark
// parity with capture off.
func (s *Store) isSlow(e *entry, o Observation) bool {
	if abs := s.cfg.SlowThreshold; abs > 0 && o.Duration >= abs {
		return true
	}
	if f := s.cfg.SlowFactor; f > 0 {
		ws := e.lat.Snapshot()
		if ws.Count >= s.cfg.MinSamples {
			if p50 := ws.Quantile(0.50); p50 > 0 && float64(o.Duration) >= f*float64(p50) {
				return true
			}
		}
	}
	return false
}

func (s *Store) captureExemplar(e *entry, o Observation) {
	s.mu.RLock()
	fn := s.capture
	s.mu.RUnlock()
	ex := Exemplar{TraceID: o.TraceID, When: time.Now(), DurationNS: int64(o.Duration)}
	if fn != nil {
		ex.Trace, ex.Events = fn(o.TraceID)
	}
	e.exMu.Lock()
	defer e.exMu.Unlock()
	e.captures++
	if len(e.exemplars) >= s.cfg.MaxExemplars {
		drop := len(e.exemplars) - s.cfg.MaxExemplars + 1
		copy(e.exemplars, e.exemplars[drop:])
		e.exemplars = e.exemplars[:s.cfg.MaxExemplars-1]
	}
	e.exemplars = append(e.exemplars, ex)
}

func (e *entry) snapshot() Digest {
	ws := e.lat.Snapshot()
	d := Digest{
		Fingerprint: FingerprintHex(e.fp),
		Kind:        e.kind,
		Text:        e.text,
		Calls:       e.calls.Load(),
		Errors:      e.errors.Load(),
		Degraded:    e.degraded.Load(),
		TotalNS:     e.totalNS.Load(),
		PlanHit:     e.planHit.Load(),
		PlanStale:   e.planStale.Load(),
		PlanMiss:    e.planMiss.Load(),
		PlanCold:    e.planCold.Load(),
		Resources: Resources{
			RowsScanned:    e.rowsScanned.Load(),
			TuplesEmitted:  e.tuplesEmitted.Load(),
			FixpointRounds: e.fixpointRounds.Load(),
			IndexBuilds:    e.indexBuilds.Load(),
			IndexProbes:    e.indexProbes.Load(),
			FedFetches:     e.fedFetches.Load(),
			WALBytes:       e.walBytes.Load(),
		},
		WindowCount: ws.Count,
		RatePerSec:  ws.Rate(),
		P50NS:       int64(ws.Quantile(0.50)),
		P99NS:       int64(ws.Quantile(0.99)),
		fp:          e.fp,
	}
	if d.Calls > 0 {
		d.MeanNS = d.TotalNS / int64(d.Calls)
	}
	e.exMu.Lock()
	d.Captures = e.captures
	d.Exemplars = len(e.exemplars)
	e.exMu.Unlock()
	return d
}

// Digests snapshots every tracked shape, ordered by descending total
// time with the fingerprint as a deterministic tiebreak.
func (s *Store) Digests() []Digest {
	s.mu.RLock()
	ents := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		ents = append(ents, e)
	}
	s.mu.RUnlock()
	out := make([]Digest, len(ents))
	for i, e := range ents {
		out[i] = e.snapshot()
	}
	sortDigests(out, "time")
	return out
}

// TopKeys are the orderings Top accepts.
var TopKeys = []string{"calls", "p99", "rows", "time"}

// Top snapshots the k highest digests by the given key: "calls" (call
// count), "p99" (windowed 99th-percentile latency), "rows" (rows
// scanned), or "time" (total evaluation time). k <= 0 means all.
func (s *Store) Top(k int, by string) ([]Digest, error) {
	switch by {
	case "calls", "p99", "rows", "time":
	default:
		return nil, fmt.Errorf("insights: unknown ordering %q (want calls, p99, rows, or time)", by)
	}
	all := s.Digests()
	sortDigests(all, by)
	if k > 0 && k < len(all) {
		all = all[:k]
	}
	return all, nil
}

func sortDigests(ds []Digest, by string) {
	key := func(d Digest) uint64 {
		switch by {
		case "calls":
			return d.Calls
		case "p99":
			return uint64(d.P99NS)
		case "rows":
			return d.Resources.RowsScanned
		default: // time
			return uint64(d.TotalNS)
		}
	}
	sort.Slice(ds, func(i, j int) bool {
		ki, kj := key(ds[i]), key(ds[j])
		if ki != kj {
			return ki > kj
		}
		return ds[i].fp < ds[j].fp
	})
}

// Get snapshots one digest and its captured exemplars (oldest first).
func (s *Store) Get(fp uint64) (Digest, []Exemplar, bool) {
	s.mu.RLock()
	e := s.entries[fp]
	s.mu.RUnlock()
	if e == nil {
		return Digest{}, nil, false
	}
	d := e.snapshot()
	e.exMu.Lock()
	exs := append([]Exemplar(nil), e.exemplars...)
	e.exMu.Unlock()
	return d, exs, true
}

// FingerprintHex renders a fingerprint the way every surface prints it.
func FingerprintHex(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// ParseFingerprint inverts FingerprintHex.
func ParseFingerprint(s string) (uint64, error) {
	var fp uint64
	if _, err := fmt.Sscanf(s, "%x", &fp); err != nil || len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("insights: malformed fingerprint %q (want up to 16 hex digits)", s)
	}
	return fp, nil
}
