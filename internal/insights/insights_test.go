package insights

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"idl/internal/obs"
	"idl/internal/qlog"
)

// textf lifts a literal into the lazy Text thunk Observe expects.
func textf(s string) func() string { return func() string { return s } }

func obsn(fp uint64, d time.Duration) Observation {
	return Observation{Fingerprint: fp, Kind: "query", Text: textf(fmt.Sprintf("?q%d", fp)), Duration: d}
}

func TestObserveAccumulates(t *testing.T) {
	s := New(Config{})
	s.Observe(Observation{Fingerprint: 7, Kind: "query", Text: textf("?.a.r(.x=X)"), Duration: 2 * time.Millisecond,
		PlanCache: "cold", Resources: Resources{RowsScanned: 10, TuplesEmitted: 3}})
	s.Observe(Observation{Fingerprint: 7, Kind: "query", Text: textf("?.a.r(.x=X)"), Duration: 4 * time.Millisecond,
		PlanCache: "hit", Err: true, Resources: Resources{RowsScanned: 5, FedFetches: 2, WALBytes: 11}})
	s.Observe(Observation{Fingerprint: 7, Kind: "query", Text: textf("?.a.r(.x=X)"), Duration: 6 * time.Millisecond,
		PlanCache: "hit", Degraded: true, Resources: Resources{FixpointRounds: 4, IndexBuilds: 1, IndexProbes: 9}})

	d, exs, ok := s.Get(7)
	if !ok {
		t.Fatal("digest not found")
	}
	if d.Fingerprint != "0000000000000007" || d.Kind != "query" || d.Text != "?.a.r(.x=X)" {
		t.Fatalf("identity: %+v", d)
	}
	if d.Calls != 3 || d.Errors != 1 || d.Degraded != 1 {
		t.Fatalf("counts: calls=%d errors=%d degraded=%d", d.Calls, d.Errors, d.Degraded)
	}
	if d.PlanHit != 2 || d.PlanCold != 1 || d.PlanStale != 0 || d.PlanMiss != 0 {
		t.Fatalf("plan tallies: %+v", d)
	}
	wantRes := Resources{RowsScanned: 15, TuplesEmitted: 3, FixpointRounds: 4,
		IndexBuilds: 1, IndexProbes: 9, FedFetches: 2, WALBytes: 11}
	if d.Resources != wantRes {
		t.Fatalf("resources: got %+v want %+v", d.Resources, wantRes)
	}
	if want := int64(12 * time.Millisecond); d.TotalNS != want {
		t.Fatalf("total: got %d want %d", d.TotalNS, want)
	}
	if want := int64(4 * time.Millisecond); d.MeanNS != want {
		t.Fatalf("mean: got %d want %d", d.MeanNS, want)
	}
	if d.WindowCount != 3 {
		t.Fatalf("window count: %d", d.WindowCount)
	}
	if d.P50NS <= 0 || d.P99NS < d.P50NS {
		t.Fatalf("quantiles: p50=%d p99=%d", d.P50NS, d.P99NS)
	}
	if len(exs) != 0 || d.Captures != 0 {
		t.Fatalf("capture disabled but got %d exemplars, %d captures", len(exs), d.Captures)
	}
}

func TestTopOrderings(t *testing.T) {
	s := New(Config{})
	// fp 1: many calls, few rows. fp 2: few calls, many rows + most time.
	for i := 0; i < 5; i++ {
		s.Observe(Observation{Fingerprint: 1, Kind: "query", Text: textf("?a"), Duration: time.Millisecond,
			Resources: Resources{RowsScanned: 1}})
	}
	s.Observe(Observation{Fingerprint: 2, Kind: "query", Text: textf("?b"), Duration: 100 * time.Millisecond,
		Resources: Resources{RowsScanned: 1000}})

	check := func(by string, want uint64) {
		t.Helper()
		top, err := s.Top(1, by)
		if err != nil {
			t.Fatalf("Top(%s): %v", by, err)
		}
		if len(top) != 1 || top[0].FP() != want {
			t.Fatalf("Top(%s): got %v want fp %d", by, top, want)
		}
	}
	check("calls", 1)
	check("rows", 2)
	check("time", 2)
	check("p99", 2)

	if all, _ := s.Top(0, "calls"); len(all) != 2 {
		t.Fatalf("Top(0) should return all, got %d", len(all))
	}
	if _, err := s.Top(1, "latency"); err == nil {
		t.Fatal("unknown ordering should error")
	}
	// Equal keys break ties by ascending fingerprint, deterministically.
	s2 := New(Config{})
	s2.Observe(obsn(9, time.Millisecond))
	s2.Observe(obsn(3, time.Millisecond))
	top, _ := s2.Top(2, "calls")
	if top[0].FP() != 3 || top[1].FP() != 9 {
		t.Fatalf("tiebreak: got %d,%d", top[0].FP(), top[1].FP())
	}
}

func TestMaxDigestsBound(t *testing.T) {
	s := New(Config{MaxDigests: 2})
	s.Observe(obsn(1, time.Millisecond))
	s.Observe(obsn(2, time.Millisecond))
	s.Observe(obsn(3, time.Millisecond)) // over the bound: dropped
	s.Observe(obsn(1, time.Millisecond)) // existing shape: still folds
	if s.Len() != 2 {
		t.Fatalf("len: %d", s.Len())
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped: %d", s.Dropped())
	}
	d, _, _ := s.Get(1)
	if d.Calls != 2 {
		t.Fatalf("existing shape should keep accumulating: calls=%d", d.Calls)
	}
}

func TestAbsoluteCaptureAndExemplarRing(t *testing.T) {
	s := New(Config{SlowThreshold: 10 * time.Millisecond, MaxExemplars: 2})
	var captured []string
	s.SetCaptureSource(func(tid string) (*obs.Span, []*qlog.Event) {
		captured = append(captured, tid)
		return &obs.Span{Name: "query"}, []*qlog.Event{{Seq: 1}}
	})
	s.Observe(Observation{Fingerprint: 5, Kind: "query", Text: textf("?q"), Duration: time.Millisecond, TraceID: "t-fast"})
	for i := 0; i < 3; i++ {
		s.Observe(Observation{Fingerprint: 5, Kind: "query", Text: textf("?q"),
			Duration: 20 * time.Millisecond, TraceID: fmt.Sprintf("t-slow-%d", i)})
	}
	if want := []string{"t-slow-0", "t-slow-1", "t-slow-2"}; fmt.Sprint(captured) != fmt.Sprint(want) {
		t.Fatalf("capture calls: %v", captured)
	}
	d, exs, _ := s.Get(5)
	if d.Captures != 3 {
		t.Fatalf("captures: %d", d.Captures)
	}
	// Ring bound 2: oldest evicted, order preserved.
	if len(exs) != 2 || exs[0].TraceID != "t-slow-1" || exs[1].TraceID != "t-slow-2" {
		t.Fatalf("exemplar ring: %+v", exs)
	}
	if exs[0].Trace == nil || len(exs[0].Events) != 1 {
		t.Fatalf("exemplar context missing: %+v", exs[0])
	}
	if exs[1].DurationNS != int64(20*time.Millisecond) {
		t.Fatalf("exemplar duration: %d", exs[1].DurationNS)
	}
}

func TestRelativeCaptureRespectsMinSamples(t *testing.T) {
	s := New(Config{SlowFactor: 10, MinSamples: 32})
	fast := func(n int) {
		for i := 0; i < n; i++ {
			s.Observe(Observation{Fingerprint: 8, Duration: time.Millisecond, TraceID: "t-fast"})
		}
	}
	slow := func() {
		s.Observe(Observation{Fingerprint: 8, Duration: 100 * time.Millisecond, TraceID: "t-slow"})
	}
	fast(10)
	slow() // 11 samples < MinSamples: the self-relative rule must not fire yet
	if d, _, _ := s.Get(8); d.Captures != 0 {
		t.Fatalf("captured below MinSamples: %d", d.Captures)
	}
	fast(25) // now well past MinSamples with p50 ≈ 1ms
	slow()   // 100ms ≥ 10 × p50: captures
	d, exs, _ := s.Get(8)
	if d.Captures != 1 {
		t.Fatalf("captures: %d", d.Captures)
	}
	if len(exs) != 1 || exs[0].TraceID != "t-slow" {
		t.Fatalf("exemplar: %+v", exs)
	}
}

func TestReset(t *testing.T) {
	s := New(Config{MaxDigests: 1, SlowThreshold: 1})
	s.Observe(obsn(1, time.Millisecond))
	s.Observe(obsn(2, time.Millisecond))
	if s.Len() != 1 || s.Dropped() != 1 {
		t.Fatalf("precondition: len=%d dropped=%d", s.Len(), s.Dropped())
	}
	s.Reset()
	if s.Len() != 0 || s.Dropped() != 0 {
		t.Fatalf("after reset: len=%d dropped=%d", s.Len(), s.Dropped())
	}
	if _, _, ok := s.Get(1); ok {
		t.Fatal("digest survived reset")
	}
	// The store keeps working after a reset.
	s.Observe(obsn(3, time.Millisecond))
	if s.Len() != 1 {
		t.Fatalf("post-reset observe: len=%d", s.Len())
	}
}

func TestFingerprintRoundTrip(t *testing.T) {
	for _, fp := range []uint64{0, 7, 0xdeadbeefcafef00d, ^uint64(0)} {
		hex := FingerprintHex(fp)
		if len(hex) != 16 {
			t.Fatalf("hex width: %q", hex)
		}
		got, err := ParseFingerprint(hex)
		if err != nil || got != fp {
			t.Fatalf("round trip %q: got %d, %v", hex, got, err)
		}
	}
	for _, bad := range []string{"", "zz", "12345678901234567"} {
		if _, err := ParseFingerprint(bad); err == nil {
			t.Fatalf("ParseFingerprint(%q) should fail", bad)
		}
	}
}

// TestConcurrentStress hammers observe / top-k / get / reset from many
// goroutines; run under -race this pins the lock discipline.
func TestConcurrentStress(t *testing.T) {
	s := New(Config{MaxDigests: 64, SlowThreshold: time.Microsecond, MaxExemplars: 2})
	s.SetCaptureSource(func(tid string) (*obs.Span, []*qlog.Event) {
		return &obs.Span{Name: "q"}, nil
	})
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fp := uint64(i % 16)
				s.Observe(Observation{Fingerprint: fp, Kind: "query", Text: textf("?q"),
					Duration: time.Duration(i%5) * time.Millisecond, TraceID: "t",
					PlanCache: "hit", Resources: Resources{RowsScanned: uint64(i)}})
				switch i % 97 {
				case 0:
					if _, err := s.Top(4, TopKeys[i%len(TopKeys)]); err != nil {
						t.Errorf("Top: %v", err)
					}
				case 1:
					s.Get(fp)
				case 2:
					if g == 0 {
						s.Reset()
					}
				case 3:
					s.Digests()
				}
			}
		}(g)
	}
	wg.Wait()
	// Post-stress sanity: the store is still coherent.
	for _, d := range s.Digests() {
		if d.Calls == 0 {
			t.Fatalf("zero-call digest: %+v", d)
		}
	}
}
