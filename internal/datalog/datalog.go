// Package datalog is a first-order Datalog engine: stratified negation,
// comparison built-ins, and semi-naive bottom-up evaluation.
//
// It exists as the expressiveness and performance baseline the paper
// argues against (§1, §4): a first-order language cannot quantify over
// relation or attribute names, so posing one intention against the
// chwab/ource schemas requires a program whose size grows with the schema
// — one rule per stock. The benchmark harness generates exactly those
// programs and measures them against IDL's single higher-order
// expression.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"idl/internal/object"
)

// Term is a constant or a variable (empty Var means constant).
type Term struct {
	Var string
	Val object.Object
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term from a Go literal or object.Object.
func C(v any) Term {
	switch x := v.(type) {
	case object.Object:
		return Term{Val: x}
	case int:
		return Term{Val: object.Int(x)}
	case int64:
		return Term{Val: object.Int(x)}
	case float64:
		return Term{Val: object.Float(x)}
	case string:
		return Term{Val: object.Str(x)}
	case bool:
		return Term{Val: object.Bool(x)}
	default:
		panic("datalog: unsupported constant")
	}
}

func (t Term) isVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.isVar() {
		return t.Var
	}
	return t.Val.String()
}

// CmpOp is a comparison operator for built-in atoms.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[op]
}

// Atom is a literal in a rule body or head: either a predicate atom
// p(t1,…,tn) — possibly negated — or a comparison built-in l op r.
type Atom struct {
	Pred string // empty for comparison built-ins
	Args []Term
	Neg  bool

	Cmp  CmpOp // valid when Pred == ""
	L, R Term
}

// P builds a predicate atom.
func P(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// NotP builds a negated predicate atom.
func NotP(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args, Neg: true}
}

// Cmp builds a comparison built-in.
func Cmp(l Term, op CmpOp, r Term) Atom { return Atom{Cmp: op, L: l, R: r} }

func (a Atom) isBuiltin() bool { return a.Pred == "" }

func (a Atom) String() string {
	if a.isBuiltin() {
		return fmt.Sprintf("%s %s %s", a.L, a.Cmp, a.R)
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	s := fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
	if a.Neg {
		return "not " + s
	}
	return s
}

// Rule is head :- body.
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ")
}

// row is one fact's argument list.
type row []object.Object

func hashRowVals(r row) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range r {
		h = h*1099511628211 ^ v.Hash()
	}
	return h
}

// relation stores one predicate's facts with a dedupe index and lazy
// per-position value indexes.
type relation struct {
	rows  []row
	dedup map[uint64][]int
	// pos -> value hash -> row indexes; invalidated by appends.
	posIndex map[int]map[uint64][]int
	arity    int
}

func newRelation() *relation {
	return &relation{dedup: make(map[uint64][]int)}
}

func (r *relation) len() int { return len(r.rows) }

func (r *relation) contains(v row) bool {
	h := hashRowVals(v)
	for _, i := range r.dedup[h] {
		if rowsEqual(r.rows[i], v) {
			return true
		}
	}
	return false
}

func rowsEqual(a, b row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// add inserts a fact, reporting whether it was new.
func (r *relation) add(v row) bool {
	if r.contains(v) {
		return false
	}
	h := hashRowVals(v)
	r.dedup[h] = append(r.dedup[h], len(r.rows))
	r.rows = append(r.rows, v)
	r.posIndex = nil // appends invalidate position indexes
	if len(v) > r.arity {
		r.arity = len(v)
	}
	return true
}

// lookup returns candidate row indexes where position pos holds val.
func (r *relation) lookup(pos int, val object.Object) []int {
	if r.posIndex == nil {
		r.posIndex = make(map[int]map[uint64][]int)
	}
	idx, ok := r.posIndex[pos]
	if !ok {
		idx = make(map[uint64][]int)
		for i, rw := range r.rows {
			if pos < len(rw) {
				h := rw[pos].Hash()
				idx[h] = append(idx[h], i)
			}
		}
		r.posIndex[pos] = idx
	}
	return idx[val.Hash()]
}

// DB is a Datalog database: extensional facts plus rules.
type DB struct {
	facts map[string]*relation
	rules []Rule
	// strata computed at Seal time.
	strata  [][]Rule
	sealed  bool
	derived map[string]bool
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{facts: make(map[string]*relation), derived: make(map[string]bool)}
}

// Fact asserts an extensional fact.
func (d *DB) Fact(pred string, args ...any) {
	vals := make(row, len(args))
	for i, a := range args {
		vals[i] = C(a).Val
	}
	d.rel(pred).add(vals)
	d.sealed = false
}

func (d *DB) rel(pred string) *relation {
	r, ok := d.facts[pred]
	if !ok {
		r = newRelation()
		d.facts[pred] = r
	}
	return r
}

// AddRule registers a rule after validating range restriction: every head
// variable and every variable in a negated or built-in atom must occur in
// a positive body atom.
func (d *DB) AddRule(r Rule) error {
	if r.Head.isBuiltin() || r.Head.Neg {
		return fmt.Errorf("datalog: head must be a positive predicate atom")
	}
	positive := map[string]bool{}
	for _, a := range r.Body {
		if a.isBuiltin() || a.Neg {
			continue
		}
		for _, t := range a.Args {
			if t.isVar() {
				positive[t.Var] = true
			}
		}
	}
	check := func(t Term, where string) error {
		if t.isVar() && !positive[t.Var] {
			return fmt.Errorf("datalog: variable %s in %s is not range restricted", t.Var, where)
		}
		return nil
	}
	for _, t := range r.Head.Args {
		if err := check(t, "head"); err != nil {
			return err
		}
	}
	for _, a := range r.Body {
		switch {
		case a.isBuiltin():
			if err := check(a.L, "built-in"); err != nil {
				return err
			}
			if err := check(a.R, "built-in"); err != nil {
				return err
			}
		case a.Neg:
			for _, t := range a.Args {
				if err := check(t, "negated atom"); err != nil {
					return err
				}
			}
		}
	}
	d.rules = append(d.rules, r)
	d.derived[r.Head.Pred] = true
	d.sealed = false
	return nil
}

// stratify orders predicates so negative dependencies never cycle.
func (d *DB) stratify() error {
	// Predicate stratum numbers via iterated relaxation (small programs).
	stratum := map[string]int{}
	for _, r := range d.rules {
		stratum[r.Head.Pred] = 0
	}
	n := len(stratum) + 1
	for pass := 0; pass <= n*n; pass++ {
		changed := false
		for _, r := range d.rules {
			h := stratum[r.Head.Pred]
			for _, a := range r.Body {
				if a.isBuiltin() {
					continue
				}
				s, isDerived := stratum[a.Pred]
				if !isDerived {
					continue
				}
				want := s
				if a.Neg {
					want = s + 1
				}
				if h < want {
					h = want
					changed = true
				}
			}
			if h > len(stratum) {
				return fmt.Errorf("datalog: program is not stratified (negation in recursion through %s)", r.Head.Pred)
			}
			stratum[r.Head.Pred] = h
		}
		if !changed {
			break
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	d.strata = make([][]Rule, maxS+1)
	for _, r := range d.rules {
		s := stratum[r.Head.Pred]
		d.strata[s] = append(d.strata[s], r)
	}
	return nil
}

// Seal computes strata and evaluates all rules to fixpoint (semi-naive).
// It must be called (or is called implicitly by Query) after facts or
// rules change.
func (d *DB) Seal() error {
	if d.sealed {
		return nil
	}
	// Reset derived relations: re-derive from scratch.
	for pred := range d.derived {
		d.facts[pred] = newRelation()
	}
	if err := d.stratify(); err != nil {
		return err
	}
	for _, stratum := range d.strata {
		if err := d.fixpoint(stratum); err != nil {
			return err
		}
	}
	d.sealed = true
	return nil
}

// fixpoint runs semi-naive iteration over one stratum: after the first
// round, a rule fires only on bindings that touch at least one
// delta-fresh fact of a recursive predicate.
func (d *DB) fixpoint(rules []Rule) error {
	recursive := map[string]bool{}
	for _, r := range rules {
		recursive[r.Head.Pred] = true
	}
	delta := map[string]*relation{}
	for p := range recursive {
		delta[p] = newRelation()
	}
	first := true
	for round := 0; ; round++ {
		if round > 1_000_000 {
			return fmt.Errorf("datalog: fixpoint did not converge")
		}
		nextDelta := map[string]*relation{}
		for p := range recursive {
			nextDelta[p] = newRelation()
		}
		any := false
		for _, r := range rules {
			variants := d.deltaVariants(r, recursive, delta, first)
			for _, variant := range variants {
				err := d.joinBody(r, variant, func(bind map[string]object.Object) {
					head := make(row, len(r.Head.Args))
					for i, t := range r.Head.Args {
						if t.isVar() {
							head[i] = bind[t.Var]
						} else {
							head[i] = t.Val
						}
					}
					if d.rel(r.Head.Pred).add(head) {
						nextDelta[r.Head.Pred].add(head)
						any = true
					}
				})
				if err != nil {
					return err
				}
			}
		}
		if !any {
			return nil
		}
		delta = nextDelta
		first = false
	}
}

// deltaVariant marks which body atom reads the delta relation (-1: none,
// evaluate against full relations — used in the first round).
type deltaVariant struct {
	deltaAtom int
	delta     map[string]*relation
}

func (d *DB) deltaVariants(r Rule, recursive map[string]bool, delta map[string]*relation, first bool) []deltaVariant {
	if first {
		return []deltaVariant{{deltaAtom: -1}}
	}
	var out []deltaVariant
	for i, a := range r.Body {
		if !a.isBuiltin() && !a.Neg && recursive[a.Pred] {
			out = append(out, deltaVariant{deltaAtom: i, delta: delta})
		}
	}
	return out
}

// joinBody enumerates bindings satisfying the rule body left to right,
// using per-position indexes when a join column is already bound.
func (d *DB) joinBody(r Rule, variant deltaVariant, emit func(map[string]object.Object)) error {
	bind := map[string]object.Object{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(r.Body) {
			emit(copyBind(bind))
			return nil
		}
		a := r.Body[i]
		switch {
		case a.isBuiltin():
			l, err := resolve(a.L, bind)
			if err != nil {
				return fmt.Errorf("datalog: %v in rule %s", err, r)
			}
			rv, err := resolve(a.R, bind)
			if err != nil {
				return fmt.Errorf("datalog: %v in rule %s", err, r)
			}
			if applyCmp(a.Cmp, l, rv) {
				return rec(i + 1)
			}
			return nil
		case a.Neg:
			target := make(row, len(a.Args))
			for j, t := range a.Args {
				v, err := resolve(t, bind)
				if err != nil {
					return fmt.Errorf("datalog: %v in rule %s", err, r)
				}
				target[j] = v
			}
			if !d.rel(a.Pred).contains(target) {
				return rec(i + 1)
			}
			return nil
		default:
			rel := d.rel(a.Pred)
			if variant.deltaAtom == i {
				rel = variant.delta[a.Pred]
			}
			return d.scanAtom(rel, a, bind, func() error { return rec(i + 1) })
		}
	}
	return rec(0)
}

// scanAtom unifies an atom against a relation, using an index on the
// first bound position when one exists.
func (d *DB) scanAtom(rel *relation, a Atom, bind map[string]object.Object, k func() error) error {
	// Find an indexable position: a constant arg or an already-bound var.
	idxPos := -1
	var idxVal object.Object
	for i, t := range a.Args {
		if !t.isVar() {
			idxPos, idxVal = i, t.Val
			break
		}
		if v, ok := bind[t.Var]; ok {
			idxPos, idxVal = i, v
			break
		}
	}
	try := func(rw row) error {
		if len(rw) != len(a.Args) {
			return nil
		}
		var bound []string
		ok := true
		for i, t := range a.Args {
			if !t.isVar() {
				if !rw[i].Equal(t.Val) {
					ok = false
					break
				}
				continue
			}
			if v, has := bind[t.Var]; has {
				if !rw[i].Equal(v) {
					ok = false
					break
				}
				continue
			}
			bind[t.Var] = rw[i]
			bound = append(bound, t.Var)
		}
		var err error
		if ok {
			err = k()
		}
		for _, v := range bound {
			delete(bind, v)
		}
		return err
	}
	if idxPos >= 0 {
		for _, i := range rel.lookup(idxPos, idxVal) {
			if err := try(rel.rows[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, rw := range rel.rows {
		if err := try(rw); err != nil {
			return err
		}
	}
	return nil
}

func resolve(t Term, bind map[string]object.Object) (object.Object, error) {
	if !t.isVar() {
		return t.Val, nil
	}
	v, ok := bind[t.Var]
	if !ok {
		return nil, fmt.Errorf("unbound variable %s", t.Var)
	}
	return v, nil
}

func applyCmp(op CmpOp, l, r object.Object) bool {
	switch op {
	case EQ:
		return l.Equal(r)
	case NE:
		return !l.Equal(r)
	}
	if !object.Comparable(l, r) {
		return false
	}
	c := l.Compare(r)
	switch op {
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	return false
}

func copyBind(b map[string]object.Object) map[string]object.Object {
	out := make(map[string]object.Object, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Query evaluates a goal atom and returns the satisfying bindings of its
// variables, deduplicated.
func (d *DB) Query(goal Atom) ([]map[string]object.Object, error) {
	if goal.isBuiltin() || goal.Neg {
		return nil, fmt.Errorf("datalog: goal must be a positive predicate atom")
	}
	if err := d.Seal(); err != nil {
		return nil, err
	}
	var out []map[string]object.Object
	seen := map[uint64][]int{}
	bind := map[string]object.Object{}
	err := d.scanAtom(d.rel(goal.Pred), goal, bind, func() error {
		snap := copyBind(bind)
		h := hashBind(snap)
		dup := false
		for _, i := range seen[h] {
			if bindsEqual(out[i], snap) {
				dup = true
				break
			}
		}
		if !dup {
			seen[h] = append(seen[h], len(out))
			out = append(out, snap)
		}
		return nil
	})
	return out, err
}

// Count returns the number of facts for a predicate (after sealing).
func (d *DB) Count(pred string) (int, error) {
	if err := d.Seal(); err != nil {
		return 0, err
	}
	return d.rel(pred).len(), nil
}

// Predicates lists known predicate names, sorted.
func (d *DB) Predicates() []string {
	names := make([]string, 0, len(d.facts))
	for p := range d.facts {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}

func hashBind(b map[string]object.Object) uint64 {
	var acc uint64 = 0x61c8864680b583eb
	for k, v := range b {
		acc += object.Str(k).Hash() ^ v.Hash()
	}
	return acc
}

func bindsEqual(a, b map[string]object.Object) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}
