package datalog

import (
	"testing"
)

func BenchmarkTransitiveClosure(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDB()
		for j := 0; j < 100; j++ {
			d.Fact("edge", j, j+1)
		}
		if err := d.AddRule(Rule{Head: P("path", V("X"), V("Y")), Body: []Atom{P("edge", V("X"), V("Y"))}}); err != nil {
			b.Fatal(err)
		}
		if err := d.AddRule(Rule{Head: P("path", V("X"), V("Z")), Body: []Atom{P("path", V("X"), V("Y")), P("edge", V("Y"), V("Z"))}}); err != nil {
			b.Fatal(err)
		}
		n, err := d.Count("path")
		if err != nil || n != 100*101/2 {
			b.Fatalf("paths = %d, %v", n, err)
		}
	}
}

func BenchmarkIndexedJoinQuery(b *testing.B) {
	d := NewDB()
	for j := 0; j < 5000; j++ {
		d.Fact("emp", j, j%100)
		if j < 100 {
			d.Fact("dept", j, j*10)
		}
	}
	if err := d.AddRule(Rule{
		Head: P("empMgr", V("E"), V("M")),
		Body: []Atom{P("emp", V("E"), V("D")), P("dept", V("D"), V("M"))},
	}); err != nil {
		b.Fatal(err)
	}
	if err := d.Seal(); err != nil {
		b.Fatal(err)
	}
	goal := P("empMgr", C(42), V("M"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := d.Query(goal)
		if err != nil || len(rows) != 1 {
			b.Fatalf("rows = %v, %v", rows, err)
		}
	}
}

func BenchmarkNegationStratified(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDB()
		for j := 0; j < 1000; j++ {
			d.Fact("node", j)
			if j%2 == 0 {
				d.Fact("edge", j, j+1)
			}
		}
		if err := d.AddRule(Rule{Head: P("hasOut", V("X")), Body: []Atom{P("edge", V("X"), V("Y"))}}); err != nil {
			b.Fatal(err)
		}
		if err := d.AddRule(Rule{Head: P("sink", V("X")), Body: []Atom{P("node", V("X")), NotP("hasOut", V("X"))}}); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Count("sink"); err != nil {
			b.Fatal(err)
		}
	}
}
