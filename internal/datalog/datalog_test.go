package datalog

import (
	"strings"
	"testing"

	"idl/internal/object"
)

func TestFactsAndGroundQuery(t *testing.T) {
	d := NewDB()
	d.Fact("quote", object.NewDate(85, 3, 1), "hp", 50)
	d.Fact("quote", object.NewDate(85, 3, 2), "hp", 55)
	d.Fact("quote", object.NewDate(85, 3, 1), "hp", 50) // dup
	n, err := d.Count("quote")
	if err != nil || n != 2 {
		t.Fatalf("count = %d, %v", n, err)
	}
	rows, err := d.Query(P("quote", C(object.NewDate(85, 3, 1)), C("hp"), V("P")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0]["P"].Equal(object.Int(50)) {
		t.Errorf("rows = %v", rows)
	}
}

func TestJoinRule(t *testing.T) {
	d := NewDB()
	d.Fact("emp", "john", 10)
	d.Fact("emp", "mary", 20)
	d.Fact("dept", 10, "boss")
	d.Fact("dept", 20, "chief")
	// The paper's §2 empMgr view, first order.
	if err := d.AddRule(Rule{
		Head: P("empMgr", V("Name"), V("Mgr")),
		Body: []Atom{P("emp", V("Name"), V("Dno")), P("dept", V("Dno"), V("Mgr"))},
	}); err != nil {
		t.Fatal(err)
	}
	rows, err := d.Query(P("empMgr", C("john"), V("M")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0]["M"].Equal(object.Str("boss")) {
		t.Errorf("rows = %v", rows)
	}
}

func TestTransitiveClosureSemiNaive(t *testing.T) {
	d := NewDB()
	const n = 50
	for i := 0; i < n; i++ {
		d.Fact("edge", i, i+1)
	}
	if err := d.AddRule(Rule{Head: P("path", V("X"), V("Y")), Body: []Atom{P("edge", V("X"), V("Y"))}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRule(Rule{Head: P("path", V("X"), V("Z")), Body: []Atom{P("path", V("X"), V("Y")), P("edge", V("Y"), V("Z"))}}); err != nil {
		t.Fatal(err)
	}
	total, err := d.Count("path")
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n + 1) / 2
	if total != want {
		t.Errorf("paths = %d, want %d", total, want)
	}
	rows, err := d.Query(P("path", C(0), V("Y")))
	if err != nil || len(rows) != n {
		t.Errorf("paths from 0 = %d, %v", len(rows), err)
	}
}

func TestNegationStratified(t *testing.T) {
	d := NewDB()
	d.Fact("node", 1)
	d.Fact("node", 2)
	d.Fact("node", 3)
	d.Fact("edge", 1, 2)
	if err := d.AddRule(Rule{Head: P("hasOut", V("X")), Body: []Atom{P("edge", V("X"), V("Y"))}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRule(Rule{Head: P("sink", V("X")), Body: []Atom{P("node", V("X")), NotP("hasOut", V("X"))}}); err != nil {
		t.Fatal(err)
	}
	rows, err := d.Query(P("sink", V("X")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("sinks = %v", rows)
	}
}

func TestUnstratifiedRejected(t *testing.T) {
	d := NewDB()
	d.Fact("b", 1)
	if err := d.AddRule(Rule{Head: P("p", V("X")), Body: []Atom{P("b", V("X")), NotP("q", V("X"))}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRule(Rule{Head: P("q", V("X")), Body: []Atom{P("p", V("X"))}}); err != nil {
		t.Fatal(err)
	}
	err := d.Seal()
	if err == nil || !strings.Contains(err.Error(), "stratified") {
		t.Errorf("want stratification error, got %v", err)
	}
}

func TestComparisonBuiltins(t *testing.T) {
	d := NewDB()
	d.Fact("quote", "hp", 50)
	d.Fact("quote", "sun", 201)
	d.Fact("quote", "ibm", 140)
	if err := d.AddRule(Rule{
		Head: P("expensive", V("S")),
		Body: []Atom{P("quote", V("S"), V("P")), Cmp(V("P"), GT, C(200))},
	}); err != nil {
		t.Fatal(err)
	}
	rows, err := d.Query(P("expensive", V("S")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0]["S"].Equal(object.Str("sun")) {
		t.Errorf("rows = %v", rows)
	}
}

func TestAllTimeHighWithNegation(t *testing.T) {
	d := NewDB()
	prices := map[object.Date]int{
		object.NewDate(85, 3, 1): 50,
		object.NewDate(85, 3, 2): 55,
		object.NewDate(85, 3, 3): 62,
	}
	for dt, p := range prices {
		d.Fact("hp", dt, p)
	}
	if err := d.AddRule(Rule{
		Head: P("higher", V("D"), V("P")),
		Body: []Atom{P("hp", V("D"), V("P")), P("hp", V("D2"), V("P2")), Cmp(V("P2"), GT, V("P"))},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRule(Rule{
		Head: P("high", V("D"), V("P")),
		Body: []Atom{P("hp", V("D"), V("P")), NotP("higher", V("D"), V("P"))},
	}); err != nil {
		t.Fatal(err)
	}
	rows, err := d.Query(P("high", V("D"), V("P")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0]["P"].Equal(object.Int(62)) {
		t.Errorf("rows = %v", rows)
	}
}

func TestRangeRestriction(t *testing.T) {
	d := NewDB()
	cases := []Rule{
		{Head: P("p", V("X")), Body: []Atom{P("b", V("Y"))}},                        // head var unbound
		{Head: P("p", V("X")), Body: []Atom{P("b", V("X")), NotP("q", V("Z"))}},     // neg var unbound
		{Head: P("p", V("X")), Body: []Atom{P("b", V("X")), Cmp(V("W"), LT, C(1))}}, // builtin var unbound
	}
	for _, r := range cases {
		if err := d.AddRule(r); err == nil {
			t.Errorf("AddRule(%s) should fail", r)
		}
	}
	if err := d.AddRule(Rule{Head: Cmp(V("X"), EQ, C(1)), Body: nil}); err == nil {
		t.Error("builtin head should fail")
	}
}

func TestResealAfterNewFacts(t *testing.T) {
	d := NewDB()
	d.Fact("edge", 1, 2)
	if err := d.AddRule(Rule{Head: P("path", V("X"), V("Y")), Body: []Atom{P("edge", V("X"), V("Y"))}}); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Count("path"); n != 1 {
		t.Fatalf("paths = %d", n)
	}
	d.Fact("edge", 2, 3)
	if n, _ := d.Count("path"); n != 2 {
		t.Errorf("paths after new fact = %d, want 2", n)
	}
}

func TestQueryValidation(t *testing.T) {
	d := NewDB()
	if _, err := d.Query(NotP("p", V("X"))); err == nil {
		t.Error("negated goal should fail")
	}
	if _, err := d.Query(Cmp(V("X"), EQ, C(1))); err == nil {
		t.Error("builtin goal should fail")
	}
}

func TestPredicatesListing(t *testing.T) {
	d := NewDB()
	d.Fact("b", 1)
	d.Fact("a", 1)
	got := d.Predicates()
	if len(got) != 2 || got[0] != "a" {
		t.Errorf("predicates = %v", got)
	}
}

func TestConstantsInRuleHead(t *testing.T) {
	d := NewDB()
	d.Fact("q", "hp", 50)
	if err := d.AddRule(Rule{
		Head: P("tagged", C("stock"), V("S")),
		Body: []Atom{P("q", V("S"), V("P"))},
	}); err != nil {
		t.Fatal(err)
	}
	rows, err := d.Query(P("tagged", C("stock"), V("S")))
	if err != nil || len(rows) != 1 {
		t.Errorf("rows = %v, %v", rows, err)
	}
}
