package idl

import (
	"path/filepath"
	"strings"
	"testing"
)

// seedStocks loads the paper's running example at small scale.
func seedStocks(t testing.TB, db *DB) {
	t.Helper()
	cat := db.Catalog()
	dates := []DateValue{Date(85, 3, 1), Date(85, 3, 2), Date(85, 3, 3)}
	prices := map[string][]int{"hp": {50, 55, 62}, "ibm": {140, 155, 160}, "sun": {201, 210, 150}}
	for s, ps := range prices {
		for i, p := range ps {
			if _, err := cat.Insert("euter", "r", Tup("date", dates[i], "stkCode", s, "clsPrice", p)); err != nil {
				t.Fatal(err)
			}
			if _, err := cat.Insert("ource", s, Tup("date", dates[i], "clsPrice", p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, d := range dates {
		row := Tup("date", d)
		for s, ps := range prices {
			row.Put(s, Int(ps[i]))
		}
		if _, err := cat.Insert("chwab", "r", row); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuickstartFlow(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	res, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>200)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains(Row{"S": Str("sun")}) {
		t.Errorf("answer:\n%s", res)
	}
	// Leading ? optional.
	res2, err := db.Query(".euter.r(.stkCode=S, .clsPrice>200)")
	if err != nil || res2.Len() != 1 {
		t.Errorf("optional ?: %v, %v", res2, err)
	}
}

func TestQueryRejectsUpdates(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if _, err := db.Query("?.euter.r+(.x=1)"); err == nil || !strings.Contains(err.Error(), "Exec") {
		t.Errorf("err = %v", err)
	}
}

func TestExecAndViews(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if err := db.DefineViews(
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
		".dbO.S+(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
	); err != nil {
		t.Fatal(err)
	}
	if got := db.Views(); len(got) != 2 {
		t.Errorf("views = %v", got)
	}
	info, err := db.Exec("?.euter.r+(.date=3/4/85,.stkCode=dec,.clsPrice=77)")
	if err != nil || info.ElemsInserted != 1 {
		t.Fatalf("exec: %+v, %v", info, err)
	}
	res, err := db.Query("?.dbO.dec(.clsPrice=P)")
	if err != nil || !res.Contains(Row{"P": Int(77)}) {
		t.Errorf("view after exec: %v, %v", res, err)
	}
}

func TestProgramsAndCall(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if err := db.DefinePrograms(
		".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
		".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.date=D, .S-=X)",
		".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)",
	); err != nil {
		t.Fatal(err)
	}
	if ps := db.Programs(); len(ps) != 1 || ps[0].Name != "delStk" {
		t.Errorf("programs = %v", ps)
	}
	info, err := db.Call("dbU", "delStk", map[string]any{"S": "hp", "D": Date(85, 3, 3)})
	if err != nil || !info.Changed() {
		t.Fatalf("call: %+v, %v", info, err)
	}
	res, _ := db.Query("?.euter.r(.stkCode=hp,.date=3/3/85)")
	if res.Bool() {
		t.Error("delStk should have deleted the euter tuple")
	}
	if _, err := db.Call("dbU", "delStk", map[string]any{"S": struct{}{}}); err == nil {
		t.Error("unsupported param type should fail")
	}
}

func TestLoadScript(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	script := `
		% unified view
		.dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P);
		.dbU.ins(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S, .date=D, .clsPrice=P);
		?.dbU.ins(.stk=new, .date=3/9/85, .price=9);
		?.dbI.p(.stk=new, .price=P)
	`
	results, err := db.Load(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	kinds := []string{"rule", "clause", "exec", "query"}
	for i, k := range kinds {
		if results[i].Kind != k {
			t.Errorf("result %d kind = %s, want %s", i, results[i].Kind, k)
		}
	}
	if last := results[3].Answer; last == nil || !last.Contains(Row{"P": Int(9)}) {
		t.Errorf("final query:\n%v", results[3].Answer)
	}
}

func TestLoadScriptErrors(t *testing.T) {
	db := Open()
	if _, err := db.Load("?.x("); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := db.Load(".v.p+(.x=X) <- .b.s(.y=Y)"); err == nil {
		t.Error("rule validation error should surface")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	path := filepath.Join(t.TempDir(), "u.idl")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Query("?.euter.r(.stkCode=S, .clsPrice>200)")
	if err != nil || res.Len() != 1 {
		t.Errorf("restored query: %v, %v", res, err)
	}
	if _, err := OpenSnapshot(filepath.Join(t.TempDir(), "missing.idl")); err == nil {
		t.Error("missing snapshot should fail")
	}
}

func TestCatalogIntegration(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	dbs := db.Catalog().Databases()
	if len(dbs) != 3 {
		t.Errorf("databases = %v", dbs)
	}
	stats := db.Catalog().Stats()
	total := 0
	for _, s := range stats {
		total += s.Tuples
	}
	if total != 9+9+3 { // euter 9, ource 3×3, chwab 3
		t.Errorf("total tuples = %d", total)
	}
	// DDL through the catalog invalidates views.
	if err := db.DefineView(".v.codes+(.c=S) <- .euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("?.v.codes(.c=C)")
	if res.Len() != 3 {
		t.Fatalf("codes = %d", res.Len())
	}
	if _, err := db.Catalog().Insert("euter", "r", Tup("date", Date(85, 3, 9), "stkCode", "x", "clsPrice", 1)); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("?.v.codes(.c=C)")
	if res.Len() != 4 {
		t.Errorf("codes after insert = %d, want 4 (catalog change must invalidate views)", res.Len())
	}
}

func TestStatsExposed(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if _, err := db.Query("?.euter.r(.stkCode=hp)"); err != nil {
		t.Fatal(err)
	}
	if db.Stats().ElementsScanned == 0 {
		t.Error("stats should count scanned elements")
	}
}

func TestValueHelpers(t *testing.T) {
	tp := Tup("a", 1, "b", "x", "c", 2.5, "d", true, "e", SetOf(1, 2))
	if tp.Len() != 5 {
		t.Errorf("Tup len = %d", tp.Len())
	}
	d := Date(85, 3, 3)
	if d.Year != 1985 {
		t.Errorf("year = %d", d.Year)
	}
}
