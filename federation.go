package idl

import (
	"context"
	"fmt"
	"time"

	"idl/internal/ast"
	"idl/internal/federation"
	"idl/internal/parser"
	"idl/internal/qlog"
	"idl/internal/wal"
)

// Federated member databases. A DB can mount autonomous members behind
// the federation.Source interface; their contents are synced into the
// universe as read-only snapshots before each query or update request.
// Failure semantics are governed by Options.BestEffort: fail fast (the
// default — an unreachable member aborts with a *SourceError, preserving
// single-site behavior) or degrade gracefully (the member evaluates as
// empty and the answer carries a DegradedReport). Updates always fail
// fast, and update requests that target a member snapshot are rejected —
// members are administered autonomously, not through the federation.

type (
	// Source is a member database: a named set of relations that can be
	// listed and scanned under a context.
	Source = federation.Source
	// FederationConfig tunes the resilience stack Resilient composes:
	// per-attempt timeout, retry count and backoff, breaker threshold and
	// cooldown.
	FederationConfig = federation.Config
	// DegradedReport describes a best-effort answer's degradation: every
	// member's health and the conjuncts that were skipped.
	DegradedReport = federation.Report
	// SourceHealth is one member's entry in a DegradedReport.
	SourceHealth = federation.SourceHealth
	// SourceError is the typed failure of a fail-fast federation
	// operation, naming the member and operation that failed.
	SourceError = federation.SourceError
)

// NewMemorySource wraps an in-memory database tuple (relation name →
// set) as a Source — the reference member implementation, and the base
// layer fault injection wraps in tests and the CLI's chaos mode.
func NewMemorySource(name string, db *Tuple) Source {
	return federation.NewMemorySource(name, db)
}

// Resilient wraps a source with the full resilience stack: circuit
// breaker outermost, then retries with capped exponential backoff, then
// a per-attempt timeout.
func Resilient(inner Source, cfg FederationConfig) Source {
	return federation.Resilient(inner, cfg)
}

// DefaultFederationConfig returns the production resilience defaults.
func DefaultFederationConfig() FederationConfig { return federation.DefaultConfig() }

// Mount attaches a member database under name (the source's own name
// when empty). Its relations appear after the next query or an explicit
// Sync. Member snapshots are read-only: update requests targeting them
// fail.
func (db *DB) Mount(name string, src Source) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if src != nil {
		// Breaker transitions surface as flight-recorder events (an open
		// triggers an auto-dump). The hook installs on the raw source:
		// the Meter wrapper below forwards probes but not hooks.
		if h, ok := src.(federation.BreakerHooker); ok {
			rec := db.rec
			h.SetBreakerHook(func(member string, from, to federation.BreakerState) {
				rec.BreakerTransition(member, from.String(), to.String())
			})
		}
		// Mounting turns metrics on: federated deployments want member
		// health visible, and the registry also meters every operation
		// against this source under federation.member.<name>.*.
		src = federation.Meter(name, src, db.metricsLocked())
	}
	if err := db.cat.Mount(name, src); err != nil {
		return err
	}
	db.engine.SetReadOnly(db.cat.Sources())
	return nil
}

// Unmount detaches a member database and removes its snapshot.
func (db *DB) Unmount(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.cat.Unmount(name); err != nil {
		return err
	}
	db.engine.SetReadOnly(db.cat.Sources())
	db.engine.SetUnavailable(nil)
	return nil
}

// Sources lists the mounted member database names, sorted.
func (db *DB) Sources() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.cat.Sources()
}

// Sync refreshes every member snapshot immediately, without running a
// query. In best-effort mode it returns the health report; in fail-fast
// mode an unreachable member returns a *SourceError.
func (db *DB) Sync(ctx context.Context) (*DegradedReport, error) {
	return db.syncSources(ctx, db.engine.Options().BestEffort)
}

// syncSources refreshes member snapshots under db.mu (fetches do not
// hold the engine lock, so concurrent queries proceed) and records which
// members are unavailable for Explain's skip marks. nil report when no
// sources are mounted.
func (db *DB) syncSources(ctx context.Context, bestEffort bool) (*federation.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// The mount-set check happens under db.mu: Mount/Unmount mutate the
	// catalog under the same lock, and a concurrent Mount must not race
	// the read.
	if !db.cat.HasSources() {
		return nil, nil
	}
	op := db.rec.Begin(qlog.KindSync)
	rep, err := db.cat.SyncSources(ctx, bestEffort)
	if err != nil {
		op.End(err)
		return nil, err
	}
	db.lastReport = rep
	db.engine.SetUnavailable(rep.Unavailable())
	if op != nil {
		down := rep.Unavailable()
		op.SetText(fmt.Sprintf("members=%d unreachable=%d", len(rep.Sources), len(down)))
		if rep.Degraded() {
			op.SetDegraded(rep.String(), nil)
		}
		op.End(nil)
	}
	return rep, nil
}

// queryParsed is the shared query path: sync member snapshots under the
// configured failure mode, evaluate, and attach the degradation report
// (with skipped conjuncts) to the answer when members were unreachable.
func (db *DB) queryParsed(ctx context.Context, q *ast.Query) (*Result, error) {
	return db.runQueryOp(ctx, q, func(ctx context.Context) (*Result, error) {
		return db.engine.QueryCtx(ctx, q)
	})
}

// runQueryOp wraps one read-only evaluation (ad hoc or prepared) with
// the shared query machinery: the flight-recorder op, member sync under
// the configured failure mode, degradation reporting, and answer/plan
// annotations.
func (db *DB) runQueryOp(ctx context.Context, q *ast.Query, eval func(context.Context) (*Result, error)) (*Result, error) {
	ins := db.insightsRef()
	op := db.rec.Begin(qlog.KindQuery)
	tracer := db.engine.Tracer()
	var tid string
	if op != nil || tracer != nil || (ins != nil && ins.CaptureEnabled()) {
		// The trace ID joins this query's event, journal record, span
		// tree, member fetches, WAL commits and slow-query exemplars
		// across layers. A ctx already carrying an ID (the wire server's
		// X-Trace-Id adoption) keeps it.
		tid = db.traceIDFor(ctx)
		op.SetTraceID(tid)
		if op == nil {
			ctx = qlog.WithTraceID(ctx, tid)
		}
	}
	var start time.Time
	if ins != nil {
		start = time.Now()
	}
	if op != nil {
		op.SetText(q.String())
		op.SetWorkers(db.engine.Workers())
		// Tag the context only when a tracer will consume the IDs: the
		// tag upgrades a Background context into a value-carrying one,
		// which the evaluator then polls.
		if tracer != nil {
			ctx = op.Context(ctx)
		}
	}
	rep, err := db.syncSources(ctx, db.engine.Options().BestEffort)
	if err != nil {
		op.End(err)
		db.observeQuery(ins, q, start, tid, nil, nil, err)
		return nil, err
	}
	ans, err := eval(ctx)
	if err != nil {
		op.End(err)
		db.observeQuery(ins, q, start, tid, nil, rep, err)
		return nil, err
	}
	if ans.Plan != nil {
		op.SetPlanCache(ans.Plan.Cache)
	}
	if rep != nil && rep.Degraded() {
		rep.Skipped = skippedConjuncts(q, rep)
		ans.Degraded = rep
		db.metricsRef().Counter("federation.degraded_answers").Inc()
		op.SetDegraded(rep.String(), rep.Skipped)
	}
	if op != nil {
		if op.Journaling() {
			// The journal carries the full canonical answer so replay can
			// byte-compare; the ring and log carry only the cardinality.
			op.SetAnswer(ans.String(), ans.Len())
		} else {
			op.SetRows(ans.Len())
		}
		if op.Logging() {
			if plan, perr := db.engine.ExplainQuery(q); perr == nil {
				op.SetPlanDigest(plan.String())
			}
		}
		op.End(nil)
	}
	// Observed after op.End, so the journal record exists and the root
	// span is filed before any slow-query exemplar goes looking for them.
	db.observeQuery(ins, q, start, tid, ans, rep, nil)
	return ans, nil
}

// execParsed is the shared update path. Updates are all-or-nothing, so
// the sync is always fail-fast regardless of Options.BestEffort: an
// unreachable member aborts the request before any mutation.
func (db *DB) execParsed(ctx context.Context, q *ast.Query) (*ExecInfo, error) {
	ins := db.insightsRef()
	op := db.rec.Begin(qlog.KindExec)
	tracer := db.engine.Tracer()
	var tid string
	if op != nil || tracer != nil || (ins != nil && ins.CaptureEnabled()) {
		tid = db.traceIDFor(ctx)
		op.SetTraceID(tid)
		if op == nil {
			ctx = qlog.WithTraceID(ctx, tid)
		}
	}
	if op != nil {
		op.SetText(q.String())
		op.SetWorkers(db.engine.Workers())
		if tracer != nil {
			ctx = op.Context(ctx)
		}
	}
	var start time.Time
	if ins != nil {
		start = time.Now()
	}
	if _, err := db.syncSources(ctx, false); err != nil {
		op.End(err)
		if ins != nil {
			db.observeExec(ins, ast.Fingerprint(q), "exec", q.String(), start, tid, nil, 0, err)
		}
		return nil, err
	}
	var info *ExecInfo
	var err error
	var walBytes int
	if db.wal != nil {
		// Commit protocol: apply, then append, under one lock so the log's
		// record order is the apply order. A failed append poisons the log
		// and surfaces here — the mutation is in memory but not durable,
		// and no later mutation will be acknowledged either.
		db.walCommit.Lock()
		info, err = db.engine.ExecuteCtx(ctx, q)
		if err == nil {
			payload := []byte(q.String())
			if err = db.walAppendTraced(ctx, wal.TypeExec, payload); err == nil {
				walBytes = len(payload)
			}
		}
		db.walCommit.Unlock()
	} else {
		info, err = db.engine.ExecuteCtx(ctx, q)
	}
	if info != nil {
		sum, changes := execSummary(info)
		op.SetExec(sum, changes)
	}
	op.End(err)
	if ins != nil {
		db.observeExec(ins, ast.Fingerprint(q), "exec", q.String(), start, tid, info, walBytes, err)
	}
	return info, err
}

// skippedConjuncts lists the query's top-level conjuncts that reference
// an unreachable member database — in best-effort mode they evaluate
// against an empty member and contribute nothing.
func skippedConjuncts(q *ast.Query, rep *federation.Report) []string {
	down := map[string]bool{}
	for _, name := range rep.Unavailable() {
		down[name] = true
	}
	var out []string
	for _, c := range q.Body.Conjuncts {
		a, ok := c.(*ast.AttrExpr)
		if !ok {
			continue
		}
		if name, ok := constStr(a.Name); ok && down[name] {
			out = append(out, c.String())
		}
	}
	return out
}

// QueryCtx is Query under a context: evaluation observes cancellation
// and deadlines, and mounted member databases are synced before the
// query runs.
func (db *DB) QueryCtx(ctx context.Context, src string) (*Result, error) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if ast.HasUpdate(q.Body) {
		return nil, fmt.Errorf("idl: %q is an update request; use Exec", src)
	}
	return db.queryParsed(ctx, q)
}

// ExecCtx is Exec under a context. Member sync is always fail-fast:
// updates are atomic, so an unreachable member aborts the request.
func (db *DB) ExecCtx(ctx context.Context, src string) (*ExecInfo, error) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return db.execParsed(ctx, q)
}

// LoadCtx is Load under a context; each executed statement syncs member
// snapshots first, so a scripted chaos schedule manifests per statement.
func (db *DB) LoadCtx(ctx context.Context, src string) ([]*ScriptResult, error) {
	stmts, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	var out []*ScriptResult
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.Rule:
			err := db.engine.AddRule(s)
			db.rec.Emit(qlog.KindRule, s.String(), err)
			if err == nil {
				_, err = db.walAppend(wal.TypeRule, []byte(s.String()))
			}
			if err != nil {
				return out, fmt.Errorf("idl: rule %q: %w", s.String(), err)
			}
			out = append(out, &ScriptResult{Statement: s.String(), Kind: "rule"})
		case *ast.Clause:
			err := db.engine.AddClause(s)
			db.rec.Emit(qlog.KindClause, s.String(), err)
			if err == nil {
				_, err = db.walAppend(wal.TypeClause, []byte(s.String()))
			}
			if err != nil {
				return out, fmt.Errorf("idl: clause %q: %w", s.String(), err)
			}
			out = append(out, &ScriptResult{Statement: s.String(), Kind: "clause"})
		case *ast.Query:
			if ast.HasUpdate(s.Body) || db.isProgramCall(s) {
				info, err := db.execParsed(ctx, s)
				if err != nil {
					return out, fmt.Errorf("idl: request %q: %w", s.String(), err)
				}
				out = append(out, &ScriptResult{Statement: s.String(), Kind: "exec", Exec: info})
			} else {
				ans, err := db.queryParsed(ctx, s)
				if err != nil {
					return out, fmt.Errorf("idl: query %q: %w", s.String(), err)
				}
				out = append(out, &ScriptResult{Statement: s.String(), Kind: "query", Answer: ans})
			}
		}
	}
	return out, nil
}
