package idl

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example program end to end and
// checks each produces its expected landmark output. Guarded by -short
// because it shells out to the Go toolchain.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test shells out to go run")
	}
	landmarks := map[string][]string{
		"quickstart":     {"cities above 20°C", "after inserting through the view"},
		"stockmarket":    {"One intention, three schemas", "after insStk(newco)"},
		"federation":     {"Which hospitals track an ICU?", "casualty dropped via the name mapping"},
		"viewupdate":     {"a relation that does not exist yet", "error (as required)"},
		"administration": {"duplicate key rejected", "Checksummed snapshot round trip"},
	}
	for name, wants := range landmarks {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", name, want, out)
				}
			}
		})
	}
}
