module idl

go 1.22
