package idl

import (
	"fmt"
	"sync"
	"testing"
)

// The DB (and the underlying Engine) serialize all operations behind one
// mutex; these tests exercise mixed workloads under the race detector
// and check the end state is coherent.

func TestConcurrentQueries(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if err := db.DefineViews(
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := db.Query("?.dbI.p(.stk=S, .price>200)")
				if err != nil {
					t.Error(err)
					return
				}
				if res.Len() != 1 {
					t.Errorf("rows = %d", res.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	var wg sync.WaitGroup
	const writers, perWriter = 4, 25
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				src := fmt.Sprintf("?.euter.r+(.date=4/1/85, .stkCode=w%dn%d, .clsPrice=%d)", w, i, i)
				if _, err := db.Exec(src); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>100)"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res, err := db.Query("?.euter.r(.date=4/1/85, .stkCode=S)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != writers*perWriter {
		t.Errorf("inserted rows = %d, want %d", res.Len(), writers*perWriter)
	}
}

func TestConcurrentProgramCalls(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if err := db.DefinePrograms(
		".dbU.ins(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S, .date=D, .clsPrice=P)",
	); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := db.Call("dbU", "ins", map[string]any{
					"S": fmt.Sprintf("g%dn%d", g, i),
					"D": Date(85, 5, 1),
					"P": i,
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res, _ := db.Query("?.euter.r(.date=5/1/85, .stkCode=S)")
	if res.Len() != 120 {
		t.Errorf("rows = %d, want 120", res.Len())
	}
}
