package idl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"idl/internal/stocks"
)

// The DB (and the underlying Engine) serialize all operations behind one
// mutex; these tests exercise mixed workloads under the race detector
// and check the end state is coherent.

func TestConcurrentQueries(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if err := db.DefineViews(
		".dbI.p+(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
	); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := db.Query("?.dbI.p(.stk=S, .price>200)")
				if err != nil {
					t.Error(err)
					return
				}
				if res.Len() != 1 {
					t.Errorf("rows = %d", res.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	var wg sync.WaitGroup
	const writers, perWriter = 4, 25
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				src := fmt.Sprintf("?.euter.r+(.date=4/1/85, .stkCode=w%dn%d, .clsPrice=%d)", w, i, i)
				if _, err := db.Exec(src); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>100)"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res, err := db.Query("?.euter.r(.date=4/1/85, .stkCode=S)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != writers*perWriter {
		t.Errorf("inserted rows = %d, want %d", res.Len(), writers*perWriter)
	}
}

func TestConcurrentProgramCalls(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	if err := db.DefinePrograms(
		".dbU.ins(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S, .date=D, .clsPrice=P)",
	); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := db.Call("dbU", "ins", map[string]any{
					"S": fmt.Sprintf("g%dn%d", g, i),
					"D": Date(85, 5, 1),
					"P": i,
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res, _ := db.Query("?.euter.r(.date=5/1/85, .stkCode=S)")
	if res.Len() != 120 {
		t.Errorf("rows = %d, want 120", res.Len())
	}
}

// TestCtxPreCancelled: a context cancelled before the call starts is
// honored at the entry point, before the engine does any work.
func TestCtxPreCancelled(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryCtx(ctx, "?.euter.r(.stkCode=S)"); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryCtx on cancelled ctx: %v", err)
	}
	if _, err := db.ExecCtx(ctx, "?.euter.r+(.date=4/1/85, .stkCode=zz, .clsPrice=1)"); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecCtx on cancelled ctx: %v", err)
	}
	if _, err := db.LoadCtx(ctx, "?.euter.r(.stkCode=S)"); !errors.Is(err, context.Canceled) {
		t.Errorf("LoadCtx on cancelled ctx: %v", err)
	}
	// The cancelled update must not have mutated the universe.
	res, err := db.Query("?.euter.r(.stkCode=zz)")
	if err != nil || res.Len() != 0 {
		t.Errorf("cancelled exec leaked a write: %v %v", res, err)
	}
}

// TestCtxCancelMidEnumeration aborts a deliberately explosive join
// (500³ candidate combinations, no satisfying rows) shortly after it
// starts; the evaluator's amortized cancellation checks must surface
// context.Canceled long before the enumeration could finish.
func TestCtxCancelMidEnumeration(t *testing.T) {
	db := Open()
	u, _ := stocks.Universe(stocks.Config{Stocks: 25, Days: 20, Seed: 7})
	u.Each(func(name string, v Value) bool {
		db.Engine().Base().Put(name, v)
		return true
	})
	db.Engine().Invalidate()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Cross product of euter.r with itself twice, with a constraint
		// no row can meet — the engine would enumerate all 1.25e8
		// combinations if left alone. The constraint consumes P3 (bound
		// only by the last scan) so the cost-based scheduler cannot pull
		// it forward to prune the enumeration early.
		_, err := db.QueryCtx(ctx,
			"?.euter.r(.clsPrice=P1), .euter.r(.clsPrice=P2), .euter.r(.clsPrice=P3), P3 > 100000")
		done <- err
	}()
	time.AfterFunc(10*time.Millisecond, cancel)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mid-enumeration cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query did not honor cancellation within 10s")
	}
}

// TestCtxCancelDuringConcurrentLoad mixes cancelled and uncancelled
// queries under the race detector: cancellation of one caller must not
// disturb the answers of others.
func TestCtxCancelDuringConcurrentLoad(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>100)")
				if err != nil {
					t.Error(err)
					return
				}
				if res.Len() == 0 {
					t.Error("steady query lost rows")
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				if _, err := db.QueryCtx(ctx, "?.euter.r(.stkCode=S)"); !errors.Is(err, context.Canceled) {
					t.Errorf("cancelled query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentParallelMountUnmount runs the mixed federation workload
// with parallel evaluation on: member databases mount and unmount while
// other goroutines query, sync, read stats and metrics, and retune the
// worker count. Everything must stay race-clean and the steady queries
// must keep their answers.
func TestConcurrentParallelMountUnmount(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	db.SetWorkers(4)
	reg := db.Metrics()
	var wg sync.WaitGroup
	// Mount/unmount churn: each goroutine owns a distinct member name, so
	// mounts never collide, and queries its own member while mounted.
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("m%d", g)
			member := Tup("r", SetOf(
				Tup("date", Date(85, 3, 3), "stkCode", "hp", "clsPrice", 50+g),
				Tup("date", Date(85, 3, 4), "stkCode", "sun", "clsPrice", 210),
			))
			for i := 0; i < 20; i++ {
				if err := db.Mount(name, NewMemorySource(name, member)); err != nil {
					t.Error(err)
					return
				}
				res, err := db.Query(fmt.Sprintf("?.%s.r(.stkCode=S, .clsPrice>100)", name))
				if err != nil {
					t.Error(err)
					return
				}
				if res.Len() != 1 {
					t.Errorf("member %s rows = %d, want 1", name, res.Len())
					return
				}
				if err := db.Unmount(name); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Steady queries over the in-process databases, partitioned big scans
	// included via the self-join shape.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				res, err := db.Query("?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r~(.stkCode=S, .clsPrice>P)")
				if err != nil {
					t.Error(err)
					return
				}
				if res.Len() != 3 {
					t.Errorf("all-time highs = %d, want 3", res.Len())
					return
				}
			}
		}()
	}
	// Observability readers and worker-count churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			_ = db.Stats()
			_ = reg.Snapshot()
			_ = db.Workers()
			if _, err := db.Sync(context.Background()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			db.SetWorkers(i % 8)
		}
	}()
	wg.Wait()
	db.SetWorkers(4)
	res, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>200)")
	if err != nil || res.Len() != 1 {
		t.Fatalf("final parallel query: %v %v", res, err)
	}
	if len(db.Sources()) != 0 {
		t.Errorf("members still mounted: %v", db.Sources())
	}
}

// TestConcurrentStatsAndMetrics hammers Stats/ResetStats and the
// metrics registry while queries, traced queries, and ExplainAnalyze
// run from other goroutines. Every operation evaluates into a local
// Stats merged under the engine mutex, so the counters must stay
// coherent under the race detector.
func TestConcurrentStatsAndMetrics(t *testing.T) {
	db := Open()
	seedStocks(t, db)
	reg := db.Metrics()
	db.EnableTracing(8)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := db.Query("?.euter.r(.stkCode=S, .clsPrice>100)"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, err := db.ExplainAnalyzeCtx(context.Background(), "?.ource.S(.clsPrice=P)"); err != nil {
						t.Error(err)
						return
					}
				case 2:
					_ = db.Stats()
					_ = reg.Snapshot()
					_ = reg.CounterValue("engine.query.count")
				case 3:
					db.Engine().ResetStats()
					db.ResetMetrics()
				}
			}
		}()
	}
	wg.Wait()
	// After the dust settles, one more query must record coherently.
	db.Engine().ResetStats()
	db.ResetMetrics()
	if _, err := db.Query("?.euter.r(.stkCode=S)"); err != nil {
		t.Fatal(err)
	}
	if db.Stats().ElementsScanned == 0 {
		t.Error("stats should record the final query")
	}
	if reg.CounterValue("engine.query.count") != 1 {
		t.Errorf("query count = %d, want 1", reg.CounterValue("engine.query.count"))
	}
	if tr := db.Tracer(); len(tr.Recent()) == 0 {
		t.Error("tracer should retain the final query span")
	}
}
