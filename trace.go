package idl

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"idl/internal/obs"
	"idl/internal/qlog"
)

// Trace export and correlation. Every query, update request and program
// call mints a stable trace ID at the DB facade. The ID is threaded
// through the flight-recorder event ("trace_id"), the workload journal
// record, the evaluator's root span ("trace" attribute), federation
// member-fetch spans and WAL commit spans — so one federated durable
// query can be followed from the CLI down to the fsync that committed
// it, and an exported span tree joins against flight-recorder events and
// WAL LSNs offline.

// newTraceBase seeds the per-process trace-ID base. Randomness keeps IDs
// unique across restarts; when the system's entropy source fails, the
// clock is a serviceable fallback — IDs only need to be distinct, not
// unguessable.
func newTraceBase() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// nextTraceID mints the next trace ID: 16 hex digits, unique within the
// process and (with high probability) across processes. The
// golden-ratio multiplier spreads consecutive sequence numbers across
// the whole ID space, so IDs from one run don't share a prefix.
func (db *DB) nextTraceID() string {
	seq := db.traceSeq.Add(1)
	return fmt.Sprintf("%016x", db.traceBase^(seq*0x9e3779b97f4a7c15))
}

// traceIDFor returns the trace ID one operation should run under: the
// ID already tagged on ctx when an upstream caller supplied one (the
// wire server adopts X-Trace-Id headers this way), else a freshly
// minted one. Adoption keeps one distributed request correlated across
// the wire protocol, flight-recorder events, journal records, span
// trees and WAL commit spans.
func (db *DB) traceIDFor(ctx context.Context) string {
	if tid := qlog.TraceID(ctx); tid != "" {
		return tid
	}
	return db.nextTraceID()
}

// TraceRecord is one exported operation trace: the facade-minted trace
// ID, the flight-recorder op ID the trace joins against (0 when the
// recorder had no sinks attached), and the root span with its children
// (conjunct evaluations, member fetches are separate roots sharing the
// trace ID).
type TraceRecord struct {
	TraceID string    `json:"trace_id,omitempty"`
	QID     uint64    `json:"qid,omitempty"`
	Root    *obs.Span `json:"root"`
}

// Traces returns the retained span trees, oldest first, with their
// trace/op IDs lifted out of the root spans' attributes. It fails when
// tracing is not enabled (EnableTracing attaches the tracer).
func (db *DB) Traces() ([]TraceRecord, error) {
	t := db.engine.Tracer()
	if t == nil {
		return nil, fmt.Errorf("idl: tracing is not enabled (call EnableTracing)")
	}
	roots := t.Recent()
	out := make([]TraceRecord, 0, len(roots))
	for _, root := range roots {
		rec := TraceRecord{Root: root}
		for _, a := range root.Attrs {
			switch a.Key {
			case "trace":
				rec.TraceID = a.Str
			case "qid":
				rec.QID = uint64(a.Int)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// ExportTraces writes the retained traces to w as one JSON document:
// {"traces": [...], "dropped": N} — dropped counts span trees the
// retention bound evicted, so a consumer can tell a quiet window from
// an overwritten one. Span trees serialize with name, duration_ns,
// attrs and children, so the export can be joined against the event
// log (trace_id), the workload journal (trace_id) and WAL records (the
// wal.commit span's lsn attribute) offline.
func (db *DB) ExportTraces(w io.Writer) error {
	traces, err := db.Traces()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Traces  []TraceRecord `json:"traces"`
		Dropped uint64        `json:"dropped"`
	}{Traces: traces, Dropped: db.engine.Tracer().Dropped()})
}
